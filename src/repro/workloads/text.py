"""Synthetic text corpora for the HMM and LDA experiments.

The paper builds its corpus by concatenating pairs of 20-newsgroups
postings end-on-end (up to 400 million synthetic documents), with a
10,000-word dictionary and 210 words per document on average
(Section 7.5).  We cannot ship the newsgroups data, so
:func:`newsgroup_style_corpus` reproduces the *construction*: a pool of
base "postings" with Zipf-distributed vocabularies, documents formed by
concatenating two postings.  The experiments only consume corpus
statistics (document lengths, vocabulary size), never semantics, so the
substitution preserves the benchmark's behaviour.

Two planted-structure generators (:func:`generate_hmm_corpus`,
:func:`generate_lda_corpus`) exist for correctness tests: they draw from
known HMM / LDA models so the samplers' ability to recover structure can
be asserted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import TEXT_MEAN_DOC_LENGTH, TEXT_VOCABULARY


@dataclass(frozen=True)
class Corpus:
    """A list of documents; each document is an int array of word ids."""

    documents: list  # list[np.ndarray]
    vocabulary: int
    truth: dict = field(default_factory=dict)  # planted parameters, if any

    @property
    def n_documents(self) -> int:
        return len(self.documents)

    @property
    def total_words(self) -> int:
        return int(sum(len(d) for d in self.documents))

    def mean_length(self) -> float:
        if not self.documents:
            raise ValueError("empty corpus")
        return self.total_words / self.n_documents


def newsgroup_style_corpus(
    rng: np.random.Generator,
    n_documents: int,
    vocabulary: int = TEXT_VOCABULARY,
    mean_length: int = TEXT_MEAN_DOC_LENGTH,
    base_postings: int = 200,
) -> Corpus:
    """The paper's corpus construction with synthetic postings.

    A pool of ``base_postings`` postings is generated, each with a
    Zipf-skewed word distribution biased toward its own topic region of
    the vocabulary; each document concatenates two randomly chosen
    postings end-on-end, as in the paper.
    """
    if n_documents < 1:
        raise ValueError(f"need at least one document, got {n_documents}")
    if vocabulary < 2:
        raise ValueError(f"vocabulary must be at least 2, got {vocabulary}")
    half = max(1, mean_length // 2)

    # Zipf-ish global frequencies, re-weighted per posting toward a
    # random "section" of the vocabulary (newsgroup topicality).
    ranks = np.arange(1, vocabulary + 1, dtype=float)
    global_weights = 1.0 / ranks
    postings = []
    for _ in range(base_postings):
        length = max(2, int(rng.poisson(half)))
        focus = rng.integers(vocabulary)
        window = max(10, vocabulary // 20)
        weights = global_weights.copy()
        lo, hi = max(0, focus - window), min(vocabulary, focus + window)
        weights[lo:hi] *= 20.0
        weights /= weights.sum()
        postings.append(rng.choice(vocabulary, size=length, p=weights))

    documents = []
    for _ in range(n_documents):
        first, second = rng.integers(len(postings)), rng.integers(len(postings))
        documents.append(np.concatenate([postings[first], postings[second]]))
    return Corpus(documents, vocabulary)


def generate_hmm_corpus(
    rng: np.random.Generator,
    n_documents: int,
    vocabulary: int = 100,
    states: int = 5,
    mean_length: int = 40,
    concentration: float = 0.2,
) -> Corpus:
    """Documents drawn from a planted HMM (for recovery tests).

    ``truth`` carries the planted start/transition/emission parameters
    and the hidden state sequences.
    """
    if states < 2:
        raise ValueError(f"need at least two states, got {states}")
    start = rng.dirichlet(np.full(states, 1.0))
    transitions = rng.dirichlet(np.full(states, concentration), size=states)
    emissions = rng.dirichlet(np.full(vocabulary, concentration), size=states)

    documents, state_paths = [], []
    for _ in range(n_documents):
        length = max(2, int(rng.poisson(mean_length)))
        path = np.empty(length, dtype=int)
        words = np.empty(length, dtype=int)
        path[0] = rng.choice(states, p=start)
        for k in range(1, length):
            path[k] = rng.choice(states, p=transitions[path[k - 1]])
        for k in range(length):
            words[k] = rng.choice(vocabulary, p=emissions[path[k]])
        documents.append(words)
        state_paths.append(path)
    truth = {
        "start": start,
        "transitions": transitions,
        "emissions": emissions,
        "paths": state_paths,
    }
    return Corpus(documents, vocabulary, truth)


def generate_lda_corpus(
    rng: np.random.Generator,
    n_documents: int,
    vocabulary: int = 100,
    topics: int = 5,
    mean_length: int = 40,
    topic_concentration: float = 0.1,
    doc_concentration: float = 0.3,
) -> Corpus:
    """Documents drawn from a planted LDA model (for recovery tests)."""
    if topics < 2:
        raise ValueError(f"need at least two topics, got {topics}")
    phi = rng.dirichlet(np.full(vocabulary, topic_concentration), size=topics)
    documents, thetas, assignments = [], [], []
    for _ in range(n_documents):
        length = max(1, int(rng.poisson(mean_length)))
        theta = rng.dirichlet(np.full(topics, doc_concentration))
        z = rng.choice(topics, size=length, p=theta)
        words = np.array([rng.choice(vocabulary, p=phi[t]) for t in z])
        documents.append(words)
        thetas.append(theta)
        assignments.append(z)
    truth = {"phi": phi, "thetas": thetas, "assignments": assignments}
    return Corpus(documents, vocabulary, truth)
