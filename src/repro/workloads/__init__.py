"""Synthetic workload generators for the five benchmark models."""

from repro.workloads.censoring import CensoredData, censor_beta_coin
from repro.workloads.gmm_data import GMMDataset, generate_gmm_data
from repro.workloads.regression import LassoDataset, generate_lasso_data
from repro.workloads.text import (
    Corpus,
    generate_hmm_corpus,
    generate_lda_corpus,
    newsgroup_style_corpus,
)

__all__ = [
    "CensoredData",
    "Corpus",
    "GMMDataset",
    "LassoDataset",
    "censor_beta_coin",
    "generate_gmm_data",
    "generate_hmm_corpus",
    "generate_lda_corpus",
    "generate_lasso_data",
    "newsgroup_style_corpus",
]
