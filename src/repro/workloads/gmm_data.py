"""Synthetic mixture-of-Gaussians data (paper Section 5.5).

The paper generates ten-dimensional data from a mixture of ten
Gaussians (and a second, 100-dimensional set) and asks each platform to
learn the mixture back.  The generator here plants well-separated
clusters so recovery is checkable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class GMMDataset:
    """Planted mixture data: points plus the generating truth."""

    points: np.ndarray  # (n, dim)
    means: np.ndarray  # (K, dim)
    covariances: np.ndarray  # (K, dim, dim)
    weights: np.ndarray  # (K,)
    labels: np.ndarray  # (n,) true component of each point

    @property
    def n(self) -> int:
        return self.points.shape[0]

    @property
    def dim(self) -> int:
        return self.points.shape[1]

    @property
    def clusters(self) -> int:
        return self.means.shape[0]


def generate_gmm_data(
    rng: np.random.Generator,
    n: int,
    dim: int = 10,
    clusters: int = 10,
    separation: float = 6.0,
) -> GMMDataset:
    """Draw ``n`` points from a planted ``clusters``-component mixture.

    Component means are placed isotropically at distance ~``separation``
    from the origin (relative to unit within-cluster deviation), making
    the mixture identifiable for small test runs while matching the
    paper's setup in dimension and component count.
    """
    if n < 1:
        raise ValueError(f"need at least one point, got {n}")
    if clusters < 1 or dim < 1:
        raise ValueError(f"clusters and dim must be positive, got {clusters}, {dim}")

    directions = rng.standard_normal((clusters, dim))
    directions /= np.linalg.norm(directions, axis=1, keepdims=True)
    means = directions * separation

    covariances = np.empty((clusters, dim, dim))
    for k in range(clusters):
        a = rng.standard_normal((dim, dim)) / np.sqrt(dim)
        covariances[k] = a @ a.T + np.eye(dim)

    weights = rng.dirichlet(np.full(clusters, 5.0))
    labels = rng.choice(clusters, size=n, p=weights)
    points = np.empty((n, dim))
    for k in range(clusters):
        mask = labels == k
        count = int(mask.sum())
        if count:
            chol = np.linalg.cholesky(covariances[k])
            points[mask] = means[k] + rng.standard_normal((count, dim)) @ chol.T
    return GMMDataset(points, means, covariances, weights, labels)
