"""Censoring for the Gaussian-imputation experiment (paper Section 9.1).

"For each data point, we took a sample p ~ Beta(1, 1) ... Each of the
ten attribute values within the data point was then censored by flipping
a synthesized coin which came up heads with probability p. ... In this
way, 50% of the attribute values in the data set were censored."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CensoredData:
    """Data with missing entries marked NaN plus the censoring mask."""

    points: np.ndarray  # (n, dim) with NaN where censored
    mask: np.ndarray  # (n, dim) True where censored
    original: np.ndarray  # (n, dim) the uncensored values

    @property
    def censored_fraction(self) -> float:
        return float(self.mask.mean())


def censor_beta_coin(rng: np.random.Generator, points: np.ndarray,
                     a: float = 1.0, b: float = 1.0) -> CensoredData:
    """Apply the paper's per-point Beta-coin censoring.

    The paper uses ``Beta(1, 1)`` coins, censoring 50% of all attribute
    values; other ``(a, b)`` give other censoring rates (mean
    ``a / (a + b)``) for quality studies.  Rows that would lose every
    attribute keep one uniformly random survivor — a fully censored
    point carries no information and the paper's imputation conditional
    is undefined for it.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2:
        raise ValueError(f"points must be a matrix, got shape {points.shape}")
    if a <= 0 or b <= 0:
        raise ValueError(f"Beta coin needs a, b > 0, got {a}, {b}")
    n, dim = points.shape
    p = rng.beta(a, b, size=n)
    mask = rng.uniform(size=(n, dim)) < p[:, None]
    fully_censored = mask.all(axis=1)
    if fully_censored.any():
        keep = rng.integers(dim, size=int(fully_censored.sum()))
        mask[np.flatnonzero(fully_censored), keep] = False
    censored = points.copy()
    censored[mask] = np.nan
    return CensoredData(points=censored, mask=mask, original=points)
