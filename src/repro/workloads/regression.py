"""Synthetic regression data for the Bayesian Lasso (paper Section 6.5).

The paper uses 10^3 regressor dimensions, a one-dimensional response,
and 10^5 data points per machine.  The generator plants a sparse
coefficient vector so shrinkage behaviour is checkable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class LassoDataset:
    """Planted sparse-regression data."""

    x: np.ndarray  # (n, p) regressors
    y: np.ndarray  # (n,) response
    beta: np.ndarray  # (p,) true coefficients
    noise_sigma: float

    @property
    def n(self) -> int:
        return self.x.shape[0]

    @property
    def p(self) -> int:
        return self.x.shape[1]


def generate_lasso_data(
    rng: np.random.Generator,
    n: int,
    p: int = 1000,
    active: int | None = None,
    noise_sigma: float = 1.0,
    signal: float = 3.0,
) -> LassoDataset:
    """Draw ``n`` points with ``active`` non-zero coefficients.

    Regressors are standard normal; a random subset of coefficients gets
    magnitude ~``signal`` with random signs, the rest are exactly zero —
    the regime the Lasso's double-exponential shrinkage targets.
    """
    if n < 1 or p < 1:
        raise ValueError(f"n and p must be positive, got {n}, {p}")
    if active is None:
        active = max(1, p // 10)
    if not 0 <= active <= p:
        raise ValueError(f"active must be in [0, {p}], got {active}")

    beta = np.zeros(p)
    support = rng.choice(p, size=active, replace=False)
    beta[support] = signal * rng.choice([-1.0, 1.0], size=active) * (
        0.5 + rng.uniform(size=active)
    )
    x = rng.standard_normal((n, p))
    y = x @ beta + noise_sigma * rng.standard_normal(n)
    return LassoDataset(x, y, beta, noise_sigma)
