"""repro — reproduction of the SIGMOD 2014 platform-comparison benchmark.

The package implements, in pure Python:

* the probability substrate used by the paper's five MCMC samplers
  (:mod:`repro.stats`),
* functional single-process engines for the four platforms the paper
  benchmarks — Spark-style dataflow (:mod:`repro.dataflow`), the SimSQL
  relational/VG-function engine (:mod:`repro.relational`), and the
  GraphLab / Giraph graph engines (:mod:`repro.graph`),
* a simulated EC2 cluster with a calibrated cost and memory model
  (:mod:`repro.cluster`) that scales traced work to the paper's data
  sizes and reproduces the timing/Fail tables,
* the five benchmark models on every platform (:mod:`repro.impls`), the
  reference sequential samplers (:mod:`repro.models`), the synthetic
  workload generators (:mod:`repro.workloads`), and the experiment
  harness that regenerates every table in the paper (:mod:`repro.bench`).

Quick tour::

    from repro import ClusterSpec, SparkContext, make_rng
    from repro.impls.spark import SparkGMM
    from repro.workloads import generate_gmm_data

    data = generate_gmm_data(make_rng(0), 500, dim=3, clusters=3)
    gmm = SparkGMM(data.points, 3, make_rng(1), ClusterSpec(machines=5))
    gmm.initialize()
    for i in range(10):
        gmm.iterate(i)
    print(gmm.state.means)
"""

from repro.cluster import (
    ClusterSpec,
    MachineSpec,
    NullTracer,
    RunReport,
    Simulator,
    Tracer,
)
from repro.config import EC2_M2_4XLARGE, PAPER_CLUSTER_SIZES
from repro.dataflow import SparkContext
from repro.graph import GiraphEngine, GraphLabEngine
from repro.relational import Database, MarkovChain
from repro.stats import make_rng

__version__ = "1.0.0"

__all__ = [
    "ClusterSpec",
    "Database",
    "EC2_M2_4XLARGE",
    "GiraphEngine",
    "GraphLabEngine",
    "MachineSpec",
    "MarkovChain",
    "NullTracer",
    "PAPER_CLUSTER_SIZES",
    "RunReport",
    "Simulator",
    "SparkContext",
    "Tracer",
    "__version__",
    "make_rng",
]
