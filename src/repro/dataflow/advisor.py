"""Cost-based RDD materialization advisor — the paper's "ultimate solution".

Section 10: "Perhaps the ultimate solution is to make Spark — and other
dataflow systems — work more like a database system, carefully planning
computational choices such as RDD materialization and pipelining using
cost models."  This module is that planner, built on the same cost
accounting the benchmark uses.

The advisor observes a workload (a function that exercises RDDs on a
context), records how often each RDD's partitions were computed and what
each computation cost, and then recommends a cache set under a memory
budget: greedily pick the RDDs with the highest recomputation-seconds
saved per byte of cache, counting only the *avoidable* recomputations
(all but the first).

Example::

    advisor = CacheAdvisor(sc)
    with advisor.observe():
        run_two_iterations()           # exercise the workload uncached
    plan = advisor.recommend(budget_bytes=4 * 2**30)
    for suggestion in plan.suggestions:
        print(suggestion)
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.cluster.sizes import estimate_records_bytes


@dataclass
class RDDProfile:
    """Observed behaviour of one RDD during the observation window."""

    rdd_id: int
    label: str
    computations: int = 0
    total_seconds: float = 0.0
    cached_bytes: float = 0.0

    @property
    def seconds_per_computation(self) -> float:
        if self.computations == 0:
            return 0.0
        return self.total_seconds / self.computations

    @property
    def avoidable_seconds(self) -> float:
        """Recompute time a cache would have saved."""
        return max(0, self.computations - 1) * self.seconds_per_computation

    @property
    def value_density(self) -> float:
        """Saved seconds per byte of cache — the greedy ranking key."""
        if self.cached_bytes <= 0:
            return 0.0
        return self.avoidable_seconds / self.cached_bytes


@dataclass(frozen=True)
class CacheSuggestion:
    rdd_id: int
    label: str
    saved_seconds: float
    cache_bytes: float

    def __str__(self) -> str:
        return (f"cache RDD {self.rdd_id} ({self.label}): saves "
                f"~{self.saved_seconds:.2f}s for "
                f"{self.cache_bytes / 2**20:.1f} MiB")


@dataclass
class CachePlan:
    suggestions: list[CacheSuggestion] = field(default_factory=list)
    total_saved_seconds: float = 0.0
    total_cache_bytes: float = 0.0

    def rdd_ids(self) -> set[int]:
        return {s.rdd_id for s in self.suggestions}


class CacheAdvisor:
    """Profiles RDD computation on a SparkContext and plans caching."""

    def __init__(self, sc) -> None:
        self.sc = sc
        self.profiles: dict[int, RDDProfile] = {}
        self._installed = False

    @contextmanager
    def observe(self):
        """Instrument the context's RDDs for the duration of the block."""
        from repro.dataflow import rdd as rdd_module

        original_compute = rdd_module.RDD._partitions
        advisor = self

        def instrumented(rdd_self):
            cached = rdd_self.ctx._cache.get(rdd_self.rdd_id)
            if cached is not None or rdd_self.ctx is not advisor.sc:
                return original_compute(rdd_self)
            started = time.perf_counter()
            parts = original_compute(rdd_self)
            elapsed = time.perf_counter() - started
            profile = advisor.profiles.setdefault(
                rdd_self.rdd_id,
                RDDProfile(rdd_self.rdd_id, getattr(rdd_self, "_label", "")
                           or type(rdd_self).__name__),
            )
            profile.computations += 1
            profile.total_seconds += elapsed
            if profile.cached_bytes == 0:
                profile.cached_bytes = sum(
                    estimate_records_bytes(p) for p in parts
                )
            return parts

        rdd_module.RDD._partitions = instrumented
        self._installed = True
        try:
            yield self
        finally:
            rdd_module.RDD._partitions = original_compute
            self._installed = False

    def recommend(self, budget_bytes: float) -> CachePlan:
        """Greedy knapsack over value density, within the budget."""
        if budget_bytes < 0:
            raise ValueError(f"budget must be non-negative, got {budget_bytes}")
        plan = CachePlan()
        remaining = budget_bytes
        candidates = sorted(
            (p for p in self.profiles.values()
             if p.avoidable_seconds > 0 and p.cached_bytes > 0),
            key=lambda p: p.value_density, reverse=True,
        )
        for profile in candidates:
            if profile.cached_bytes > remaining:
                continue
            plan.suggestions.append(CacheSuggestion(
                rdd_id=profile.rdd_id, label=profile.label,
                saved_seconds=profile.avoidable_seconds,
                cache_bytes=profile.cached_bytes,
            ))
            plan.total_saved_seconds += profile.avoidable_seconds
            plan.total_cache_bytes += profile.cached_bytes
            remaining -= profile.cached_bytes
        return plan
