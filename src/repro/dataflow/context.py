"""SparkContext-style entry point for the dataflow engine."""

from __future__ import annotations

from typing import Iterable

from repro import fastpath
from repro.cluster.events import DATA, FIXED, Kind, Site
from repro.cluster.machine import ClusterSpec
from repro.cluster.tracer import NullTracer, Tracer
from repro.dataflow.rdd import RDD, SourceRDD
from repro.cluster.sizes import estimate_bytes, estimate_records_bytes


class Broadcast:
    """A read-only value shipped once to every machine (``sc.broadcast``)."""

    def __init__(self, value) -> None:
        self.value = value


class SparkContext:
    """Driver-side handle, mirroring Spark's ``sc``.

    ``language`` selects the callback runtime the cost model charges:
    ``"python"`` for the paper's PySpark codes, ``"java"`` for the
    Spark-Java variants (Figure 1(b), Figure 6).  Correctness is
    identical either way — only the simulated cost differs, as in the
    paper, where both languages run the same MCMC updates.
    """

    def __init__(self, cluster: ClusterSpec, tracer: Tracer | None = None,
                 language: str = "python", fast_path: bool | None = None) -> None:
        if language not in ("python", "java"):
            raise ValueError(f"Spark callback language must be python or java, got {language!r}")
        self.cluster = cluster
        self.tracer = tracer if tracer is not None else NullTracer()
        self.language = language
        self.default_parallelism = cluster.total_cores
        self._cache: dict[int, list[list]] = {}
        self._rdd_counter = 0
        # Host-execution fast path (None follows the repro.fastpath
        # global).  Affects wall-clock only; cost events are identical.
        self._fast_path_override = fast_path
        # Per-action memo of materialized lineage: rdd_id -> (partitions,
        # captured cost events, captured memory events).  Cleared at each
        # job so cross-action recomputation (and its RNG consumption)
        # behaves exactly like the scalar engine.
        self._host_cache: dict[int, tuple] = {}
        # Byte-estimate memo keyed by partition-list identity; estimates
        # are structure-only, so identical objects give identical values.
        self._bytes_cache: dict[int, tuple[list, float]] = {}

    @property
    def fast_path(self) -> bool:
        if self._fast_path_override is not None:
            return self._fast_path_override
        return fastpath.enabled()

    def _records_bytes(self, records: list) -> float:
        """``estimate_records_bytes`` with a fast-path identity memo."""
        if not self.fast_path:
            return estimate_records_bytes(records)
        key = id(records)
        hit = self._bytes_cache.get(key)
        if hit is not None and hit[0] is records:
            return hit[1]
        nbytes = estimate_records_bytes(records)
        if len(self._bytes_cache) >= 8192:
            self._bytes_cache.clear()
        self._bytes_cache[key] = (records, nbytes)
        return nbytes

    def parallelize(self, data: Iterable, num_partitions: int | None = None,
                    scale: str = FIXED) -> RDD:
        """Distribute a driver-side collection (model-sized by default)."""
        return SourceRDD(self, data, num_partitions or self.default_parallelism,
                         scale=scale, from_storage=False, bytes_per_record=None)

    def text_file(self, records: Iterable, num_partitions: int | None = None,
                  scale: str = DATA, bytes_per_record: float | None = None) -> RDD:
        """A dataset read (and re-read, when uncached lineage recomputes)
        from distributed storage — the engine's stand-in for
        ``sc.textFile("hdfs://...")`` over already-parsed records."""
        return SourceRDD(self, records, num_partitions or self.default_parallelism,
                         scale=scale, from_storage=True, bytes_per_record=bytes_per_record)

    textFile = text_file

    def driver_compute(self, flops: float = 0.0, records: float = 0.0,
                       scale: str = FIXED, label: str = "driver") -> None:
        """Charge driver-side (serial) work — the small model updates the
        paper's codes run locally between jobs."""
        self.tracer.emit(Kind.COMPUTE, records=records, flops=flops,
                         language=self.language, scale=scale,
                         site=Site.DRIVER, label=label)

    def broadcast(self, value) -> Broadcast:
        """Ship ``value`` to every machine once, charging the broadcast."""
        self.tracer.emit(Kind.BROADCAST, bytes=estimate_bytes(value),
                         language=self.language, scale=FIXED, label="broadcast")
        return Broadcast(value)

    # ------------------------------------------------------------------
    # job execution (called by RDD actions)
    # ------------------------------------------------------------------

    def _run_job(self, rdd: RDD) -> list[list]:
        # One result stage plus one stage per unmaterialized shuffle
        # boundary in the lineage, like Spark's DAG scheduler.
        stages = 1 + rdd._stage_count()
        self.tracer.emit(Kind.JOB, records=stages, scale=FIXED, label="spark-job")
        # The host memo is per action: a new job recomputes uncached
        # lineage for real, exactly like the scalar engine (this is what
        # keeps the Section 9.2 imputation recomputation — and its RNG
        # draws — faithful with the fast path on).
        self._host_cache.clear()
        return rdd._partitions()

    def _next_rdd_id(self) -> int:
        self._rdd_counter += 1
        return self._rdd_counter
