"""Lazy, lineage-tracked RDDs in the style of Spark 0.7/0.8.

The engine really executes every transformation (the benchmark samplers
produce real posterior draws through it) while emitting cost events into
the owning context's tracer:

* narrow transformations emit ``COMPUTE`` work for each record that
  passes through a user callback, in the context's language (Python
  records pay Py4J-era per-record costs via the cost model);
* shuffle boundaries (``reduce_by_key``, ``group_by_key``, ``join``)
  emit ``SHUFFLE`` traffic and materialize shuffle buffers;
* caching pins the materialized partitions in (simulated) cluster
  memory until ``unpersist``;
* uncached lineage is **recomputed on every action**, exactly like
  Spark — this is what makes the paper's Gaussian-imputation finding
  (Section 9.2: the mutating data set defeats ``cache()``) fall out of
  the model instead of being hard-coded.

Spark-style camelCase aliases (``flatMap``, ``reduceByKey``,
``collectAsMap`` ...) are provided so the implementations read like the
paper's listings.

Scale groups: every RDD carries the scale-group label of its records
(default ``"data"``).  Transformations inherit it; operations accept
``out_scale`` (for the produced RDD and its shuffle) and ``work_scale``
(for the compute event) when the data-flow changes axis — e.g. a
``reduce_by_key`` that collapses a billion points into ten cluster
aggregates produces a ``FIXED``-scale RDD.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterable

from repro import fastpath
from repro.cluster.events import DATA, FIXED, Kind, Site
from repro.cluster.sizes import estimate_records_bytes
from repro.hashing import stable_hash


class RDD:
    """Base class: one lazily evaluated, partitioned dataset."""

    def __init__(self, ctx, scale: str, parents: tuple["RDD", ...], num_partitions: int) -> None:
        self.ctx = ctx
        self.scale = scale
        self.parents = parents
        self.num_partitions = num_partitions
        self.rdd_id = ctx._next_rdd_id()
        self._want_cache = False
        self._cache_pin: int | None = None

    # ------------------------------------------------------------------
    # transformations (lazy)
    # ------------------------------------------------------------------

    def map(self, fn: Callable, *, flops_per_record: float = 0.0,
            ops_per_record: float = 0.0, language: str | None = None,
            work_scale: str | None = None, out_scale: str | None = None,
            closure_bytes: float = 0.0, label: str = "",
            batch_fn: Callable | None = None) -> "RDD":
        """Apply ``fn`` to every record.

        ``ops_per_record`` counts the interpreted-language operations
        (library calls, per-element loop bodies) ``fn`` performs per
        record — the quantity that dominates per-record Python costs;
        ``flops_per_record`` counts the numeric work inside those calls.

        ``batch_fn``, when given, is a vectorized form taking a whole
        non-empty partition (list of records) and returning the list
        ``[fn(r) for r in part]`` — bitwise identical, same RNG stream.
        The host runs it when the fast path is on; the tracer charges
        per-record execution either way.
        """
        batch_part_fn = None if batch_fn is None else (lambda part: batch_fn(part))
        return _MappedRDD(self, lambda part: [fn(r) for r in part],
                          batch_part_fn=batch_part_fn,
                          flops_per_record=flops_per_record,
                          ops_per_record=ops_per_record, language=language,
                          work_scale=work_scale, out_scale=out_scale,
                          closure_bytes=closure_bytes, label=label or "map")

    def flat_map(self, fn: Callable, *, flops_per_record: float = 0.0,
                 ops_per_record: float = 0.0, language: str | None = None,
                 work_scale: str | None = None, out_scale: str | None = None,
                 closure_bytes: float = 0.0, label: str = "",
                 batch_fn: Callable | None = None) -> "RDD":
        """Apply ``fn`` and concatenate the resulting iterables.

        ``batch_fn`` (fast path) takes a non-empty partition and returns
        the already-concatenated outputs in identical order.
        """
        batch_part_fn = None if batch_fn is None else (lambda part: batch_fn(part))
        return _MappedRDD(self, lambda part: [o for r in part for o in fn(r)],
                          batch_part_fn=batch_part_fn,
                          flops_per_record=flops_per_record,
                          ops_per_record=ops_per_record, language=language,
                          work_scale=work_scale, out_scale=out_scale,
                          closure_bytes=closure_bytes, label=label or "flat_map")

    def filter(self, pred: Callable, *, language: str | None = None,
               out_scale: str | None = None, label: str = "") -> "RDD":
        """Keep records satisfying ``pred``; pass ``out_scale`` when the
        survivors' cardinality follows a different axis (e.g. picking
        the one block-summary record out of each partition)."""
        return _MappedRDD(self, lambda part: [r for r in part if pred(r)],
                          out_scale=out_scale, label=label or "filter",
                          language=language)

    def map_values(self, fn: Callable, *, flops_per_record: float = 0.0,
                   ops_per_record: float = 0.0, language: str | None = None,
                   work_scale: str | None = None, out_scale: str | None = None,
                   closure_bytes: float = 0.0, label: str = "",
                   batch_fn: Callable | None = None) -> "RDD":
        """Apply ``fn`` to the value of every (key, value) record.

        ``batch_fn`` (fast path) takes the list of values of a non-empty
        partition and returns ``[fn(v) for v in values]``.
        """
        if batch_fn is None:
            batch_part_fn = None
        else:
            def batch_part_fn(part):
                new_values = batch_fn([v for _, v in part])
                return [(kv[0], nv) for kv, nv in zip(part, new_values)]
        return _MappedRDD(self, lambda part: [(k, fn(v)) for k, v in part],
                          batch_part_fn=batch_part_fn,
                          flops_per_record=flops_per_record,
                          ops_per_record=ops_per_record, language=language,
                          work_scale=work_scale, out_scale=out_scale,
                          closure_bytes=closure_bytes, label=label or "map_values")

    def key_by(self, fn: Callable, *, label: str = "") -> "RDD":
        return _MappedRDD(self, lambda part: [(fn(r), r) for r in part], label=label or "key_by")

    def map_partitions(self, fn: Callable, *, flops_per_partition: float = 0.0,
                       ops_per_partition: float = 0.0, language: str | None = None,
                       work_scale: str | None = None, out_scale: str | None = None,
                       closure_bytes: float = 0.0, label: str = "") -> "RDD":
        """Apply ``fn`` to whole partitions (the bulk/vectorized path).

        The per-record callback overhead is charged once per *partition*
        rather than once per record, which is how super-vertex style
        Python codes escape per-record Py4J costs; pass ``language=
        "numpy"`` for vectorized work, and ``ops_per_partition`` for any
        interpreted per-element loop the block function still runs.
        """
        return _MappedRDD(self, fn, per_partition=True,
                          flops_per_record=flops_per_partition,
                          ops_per_record=ops_per_partition, language=language,
                          work_scale=work_scale, out_scale=out_scale,
                          closure_bytes=closure_bytes, label=label or "map_partitions")

    def union(self, other: "RDD") -> "RDD":
        return _UnionRDD(self, other)

    def sample(self, fraction: float, seed: int = 0) -> "RDD":
        """Bernoulli sample of the records (used for diagnostics)."""
        if not 0 <= fraction <= 1:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        from repro.stats import make_rng

        def sample_part(part):
            rng = make_rng(seed)
            return [r for r in part if rng.uniform() < fraction]

        return _MappedRDD(self, sample_part, per_partition=True, label="sample")

    def reduce_by_key(self, fn: Callable, *, flops_per_record: float = 0.0,
                      language: str | None = None, work_scale: str | None = None,
                      out_scale: str | None = None, label: str = "",
                      batch_combiner: Callable | None = None) -> "RDD":
        """Combine values per key with map-side combining (like Spark).

        ``batch_combiner`` (fast path) takes a list of two or more values
        in arrival order and must return exactly the left fold of ``fn``
        over them, bitwise.
        """
        return _ShuffleRDD(self, combiner=fn, batch_combiner=batch_combiner,
                           flops_per_record=flops_per_record,
                           language=language, work_scale=work_scale,
                           out_scale=FIXED if out_scale is None else out_scale,
                           label=label or "reduce_by_key")

    def group_by_key(self, *, language: str | None = None, out_scale: str | None = None,
                     label: str = "") -> "RDD":
        """Group values per key — no combining, the full data shuffles."""
        return _ShuffleRDD(self, combiner=None, language=language,
                           out_scale=self.scale if out_scale is None else out_scale,
                           label=label or "group_by_key")

    def join(self, other: "RDD", *, language: str | None = None,
             out_scale: str | None = None, label: str = "") -> "RDD":
        """Inner equi-join on keys; both sides shuffle in full."""
        return _JoinRDD(self, other, language=language,
                        out_scale=self.scale if out_scale is None else out_scale,
                        label=label or "join")

    def distinct(self, *, label: str = "") -> "RDD":
        keyed = self.map(lambda r: (r, None), label="distinct:key")
        deduped = keyed.reduce_by_key(lambda a, b: a, out_scale=self.scale, label=label or "distinct")
        return deduped.map(lambda kv: kv[0], label="distinct:unkey")

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def cache(self) -> "RDD":
        """Keep the materialized partitions in cluster memory."""
        self._want_cache = True
        return self

    persist = cache

    def unpersist(self) -> "RDD":
        """Drop cached partitions and release the pinned memory."""
        self._want_cache = False
        self.ctx._cache.pop(self.rdd_id, None)
        if self._cache_pin is not None:
            self.ctx.tracer.unpin(self._cache_pin)
            self._cache_pin = None
        return self

    # ------------------------------------------------------------------
    # actions (eager)
    # ------------------------------------------------------------------

    def collect(self) -> list:
        """Materialize every record at the driver."""
        parts = self.ctx._run_job(self)
        records = [r for part in parts for r in part]
        self._charge_driver_fan_in(records)
        return records

    def collect_as_map(self) -> dict:
        """``collect`` into a dict; records must be (key, value) pairs."""
        return dict(self.collect())

    def count(self) -> int:
        parts = self.ctx._run_job(self)
        n = sum(len(p) for p in parts)
        self._emit_compute(records=n, label="count")
        return n

    def reduce(self, fn: Callable, *, flops_per_record: float = 0.0):
        """Tree-reduce: per-partition fold, then a small driver fold."""
        parts = self.ctx._run_job(self)
        n = sum(len(p) for p in parts)
        if n == 0:
            raise ValueError("reduce of an empty RDD")
        self._emit_compute(records=n, flops=n * flops_per_record, label="reduce")
        partials = [_fold(part, fn) for part in parts if part]
        self._charge_driver_fan_in(partials, scale=FIXED)
        return _fold(partials, fn)

    def sum(self):
        return self.reduce(lambda a, b: a + b)

    def take(self, n: int) -> list:
        parts = self.ctx._run_job(self)
        return list(itertools.islice((r for p in parts for r in p), n))

    def first(self):
        taken = self.take(1)
        if not taken:
            raise ValueError("first() on an empty RDD")
        return taken[0]

    def foreach(self, fn: Callable) -> None:
        parts = self.ctx._run_job(self)
        n = sum(len(p) for p in parts)
        self._emit_compute(records=n, label="foreach")
        for part in parts:
            for record in part:
                fn(record)

    # Spark-style aliases so implementations read like the paper.
    flatMap = flat_map
    mapValues = map_values
    mapPartitions = map_partitions
    reduceByKey = reduce_by_key
    groupByKey = group_by_key
    collectAsMap = collect_as_map
    keyBy = key_by

    # ------------------------------------------------------------------
    # execution machinery
    # ------------------------------------------------------------------

    def _partitions(self) -> list[list]:
        cached = self.ctx._cache.get(self.rdd_id)
        if cached is not None:
            return cached
        fast = self.ctx.fast_path
        entry = self.ctx._host_cache.get(self.rdd_id) if fast else None
        if entry is not None:
            # Host fast path: this lineage already materialized during the
            # current action.  Replay the exact cost/memory events the
            # original computation emitted (recursively including any
            # recomputed parents), so the tracer still charges full
            # Spark-style recomputation, and reuse the partitions.
            parts, events, memory = entry
            self.ctx.tracer._replay(events, memory)
        else:
            mark = self.ctx.tracer._mark() if fast else None
            parts = self._compute()
            if fast:
                events, memory = self.ctx.tracer._events_since(mark)
                self.ctx._host_cache[self.rdd_id] = (parts, events, memory)
        if isinstance(self, (_ShuffleRDD, _JoinRDD)) and not self._want_cache:
            # Spark keeps shuffle outputs on disk across jobs; later
            # actions skip the map stage instead of recomputing it.
            self.ctx._cache[self.rdd_id] = parts
            return parts
        if self._want_cache:
            self.ctx._cache[self.rdd_id] = parts
            nbytes = sum(self.ctx._records_bytes(p) for p in parts)
            objects = sum(len(p) for p in parts)
            self._cache_pin = self.ctx.tracer.pin(
                bytes=nbytes, objects=objects, scale=self.scale,
                site=Site.CLUSTER, label=f"rdd-cache:{self.rdd_id}",
            )
        return parts

    def _compute(self) -> list[list]:
        raise NotImplementedError

    def _stage_count(self) -> int:
        """Stages this RDD's next materialization needs (shuffle cuts)."""
        if self.rdd_id in self.ctx._cache:
            return 0
        own = 1 if isinstance(self, (_ShuffleRDD, _JoinRDD)) else 0
        return own + sum(p._stage_count() for p in self.parents)

    def _language(self, override: str | None = None) -> str:
        return override or self.ctx.language

    def _emit_compute(self, records: float, flops: float = 0.0, language: str | None = None,
                      scale: str | None = None, label: str = "") -> None:
        self.ctx.tracer.emit(
            Kind.COMPUTE, records=records, flops=flops,
            language=self._language(language),
            scale=self.scale if scale is None else scale, label=label,
        )

    def _charge_driver_fan_in(self, records: list, scale: str | None = None) -> None:
        nbytes = estimate_records_bytes(records)
        self.ctx.tracer.emit(
            Kind.MESSAGE, records=len(records), bytes=nbytes,
            language=self._language(), site=Site.MACHINE,
            scale=self.scale if scale is None else scale, label="collect",
        )
        self.ctx.tracer.materialize(
            bytes=nbytes, objects=len(records), site=Site.DRIVER,
            scale=self.scale if scale is None else scale, label="driver-collect",
        )


class SourceRDD(RDD):
    """A materialized source: ``parallelize`` or ``text_file`` data."""

    def __init__(self, ctx, data: Iterable, num_partitions: int, scale: str,
                 from_storage: bool, bytes_per_record: float | None) -> None:
        data = list(data)
        num_partitions = max(1, min(num_partitions, max(1, len(data))))
        super().__init__(ctx, scale, parents=(), num_partitions=num_partitions)
        self._data = data
        self._from_storage = from_storage
        self._bytes_per_record = bytes_per_record

    def _compute(self) -> list[list]:
        parts = _split(self._data, self.num_partitions)
        if self._from_storage:
            per_record = self._bytes_per_record
            nbytes = (per_record * len(self._data) if per_record is not None
                      else estimate_records_bytes(self._data))
            self.ctx.tracer.emit(Kind.DISK_READ, bytes=nbytes, scale=self.scale, label="hdfs-read")
            self.ctx.tracer.emit(Kind.COMPUTE, records=len(self._data),
                                 language=self.ctx.language, scale=self.scale, label="parse")
        return parts


class _MappedRDD(RDD):
    """Narrow transformation: map / flat_map / filter / map_partitions."""

    def __init__(self, parent: RDD, part_fn: Callable, *, per_partition: bool = False,
                 batch_part_fn: Callable | None = None,
                 flops_per_record: float = 0.0, ops_per_record: float = 0.0,
                 language: str | None = None,
                 work_scale: str | None = None, out_scale: str | None = None,
                 closure_bytes: float = 0.0, label: str = "") -> None:
        super().__init__(parent.ctx, out_scale or parent.scale, (parent,), parent.num_partitions)
        self._part_fn = part_fn
        self._batch_part_fn = batch_part_fn
        self._per_partition = per_partition
        self._flops_per_record = flops_per_record
        self._ops_per_record = ops_per_record
        self._op_language = language
        self._work_scale = work_scale or parent.scale
        self._closure_bytes = closure_bytes
        self._label = label

    def _compute(self) -> list[list]:
        parent_parts = self.parents[0]._partitions()
        n_in = sum(len(p) for p in parent_parts)
        language = self._language(self._op_language)
        if self._per_partition:
            # One callback per partition (FIXED — the partition count does
            # not grow with the data) but the bulk work inside it does.
            self.ctx.tracer.emit(
                Kind.COMPUTE, records=len(parent_parts), language=language,
                scale=FIXED, label=self._label,
            )
            self.ctx.tracer.emit(
                Kind.COMPUTE,
                records=len(parent_parts) * self._ops_per_record,
                flops=len(parent_parts) * self._flops_per_record,
                language=language, scale=self._work_scale, label=f"{self._label}:bulk",
            )
        else:
            self.ctx.tracer.emit(
                Kind.COMPUTE, records=n_in * (1.0 + self._ops_per_record),
                flops=n_in * self._flops_per_record,
                language=language, scale=self._work_scale, label=self._label,
            )
        if self._closure_bytes:
            self.ctx.tracer.emit(
                Kind.BROADCAST, bytes=self._closure_bytes * len(parent_parts),
                language=self._language(self._op_language), scale=FIXED,
                label=f"{self._label}:closure",
            )
        if self._batch_part_fn is not None and self.ctx.fast_path:
            # Vectorized host execution: one callback per non-empty
            # partition, contracted to return the same records (and to
            # consume the same RNG stream) as the per-record form.
            out = [list(self._batch_part_fn(part)) if part else []
                   for part in parent_parts]
            fastpath.record_batch(f"rdd.map:{self._label}")
        else:
            if self._per_partition and self.ctx.fast_path:
                # Partition-granular callbacks are inherently batched.
                fastpath.record_batch(f"rdd.map_partitions:{self._label}")
            out = [list(self._part_fn(part)) for part in parent_parts]
        n_out = sum(len(p) for p in out)
        # Every record crosses the runtime boundary into the callback and
        # its result crosses back (Py4J pickling for Python, object
        # construction/GC for Java).  This is what blows up the paper's
        # Spark GMM at 100 dimensions: the per-record scatter matrix is
        # a 10,000-entry payload.
        in_bytes = sum(self.ctx._records_bytes(p) for p in parent_parts)
        out_bytes = sum(self.ctx._records_bytes(p) for p in out)
        self.ctx.tracer.emit(
            Kind.SERIALIZE, bytes=in_bytes + out_bytes, language=language,
            scale=self._work_scale, label=f"{self._label}:boundary",
        )
        if n_out > n_in:
            # Fan-out (flat_map): building the extra output records is
            # real per-record work, charged at the output's scale (a
            # Gram-matrix flat_map emits p^2 pairs per input record).
            self.ctx.tracer.emit(
                Kind.COMPUTE, records=n_out - n_in, language=language,
                scale=self.scale, label=f"{self._label}:out",
            )
        return out


class _UnionRDD(RDD):
    def __init__(self, left: RDD, right: RDD) -> None:
        if left.ctx is not right.ctx:
            raise ValueError("cannot union RDDs from different contexts")
        scale = left.scale if left.scale == right.scale else DATA
        super().__init__(left.ctx, scale, (left, right),
                         left.num_partitions + right.num_partitions)

    def _compute(self) -> list[list]:
        return self.parents[0]._partitions() + self.parents[1]._partitions()


class _ShuffleRDD(RDD):
    """Wide transformation: reduce_by_key (with combiner) / group_by_key."""

    def __init__(self, parent: RDD, combiner: Callable | None, *,
                 batch_combiner: Callable | None = None,
                 flops_per_record: float = 0.0, language: str | None = None,
                 work_scale: str | None = None, out_scale: str = FIXED,
                 label: str = "") -> None:
        super().__init__(parent.ctx, out_scale, (parent,), parent.num_partitions)
        self._combiner = combiner
        self._batch_combiner = batch_combiner
        self._flops_per_record = flops_per_record
        self._op_language = language
        self._work_scale = work_scale or parent.scale
        self._label = label

    def _compute(self) -> list[list]:
        parent = self.parents[0]
        parent_parts = parent._partitions()
        n_in = sum(len(p) for p in parent_parts)
        language = self._language(self._op_language)

        batch = self._batch_combiner if self.ctx.fast_path else None
        if self._combiner is not None:
            # Map-side combine touches every input record.
            self.ctx.tracer.emit(
                Kind.COMPUTE, records=n_in, flops=n_in * self._flops_per_record,
                language=language, scale=self._work_scale, label=f"{self._label}:combine",
            )
            combined_parts = []
            if batch is not None:
                # Same key order (first occurrence) and per-key value
                # order as the scalar fold; batch_combiner is contracted
                # to equal the left fold of the combiner bitwise.
                batched_groups = 0
                for part in parent_parts:
                    groups: dict = {}
                    for key, value in part:
                        groups.setdefault(key, []).append(value)
                    combined = []
                    for key, vals in groups.items():
                        if len(vals) == 1:
                            combined.append((key, vals[0]))
                        else:
                            combined.append((key, batch(vals)))
                            batched_groups += 1
                    combined_parts.append(combined)
                if batched_groups:
                    fastpath.record_batch(f"rdd.combine:{self._label}")
            else:
                for part in parent_parts:
                    acc: dict = {}
                    for key, value in part:
                        acc[key] = value if key not in acc else self._combiner(acc[key], value)
                    combined_parts.append(list(acc.items()))
            to_shuffle = combined_parts
            shuffle_scale = self.scale
        else:
            to_shuffle = [list(p) for p in parent_parts]
            shuffle_scale = self._work_scale

        shuffle_records = sum(len(p) for p in to_shuffle)
        shuffle_bytes = sum(estimate_records_bytes(p) for p in to_shuffle)
        self.ctx.tracer.emit(
            Kind.SHUFFLE, records=shuffle_records, bytes=shuffle_bytes,
            language=language, scale=shuffle_scale, label=self._label,
        )
        self.ctx.tracer.materialize(
            bytes=shuffle_bytes, objects=shuffle_records, scale=shuffle_scale,
            site=Site.CLUSTER, label=f"shuffle:{self._label}",
        )

        merge_touches = 0
        if self._combiner is not None and batch is not None:
            # stable_hash, not hash(): str keys hash differently in every
            # process, and bucketing must not depend on which interpreter
            # (parent or pool worker) runs the cell.
            grouped: list[dict] = [dict() for _ in range(self.num_partitions)]
            for part in to_shuffle:
                for key, value in part:
                    bucket = grouped[stable_hash(key) % self.num_partitions]
                    merge_touches += 1
                    bucket.setdefault(key, []).append(value)
            merged_groups = 0
            out = []
            for bucket in grouped:
                rows = []
                for key, vals in bucket.items():
                    if len(vals) == 1:
                        rows.append((key, vals[0]))
                    else:
                        rows.append((key, batch(vals)))
                        merged_groups += 1
                out.append(rows)
            if merged_groups:
                fastpath.record_batch(f"rdd.merge:{self._label}")
        else:
            buckets: list[dict] = [dict() for _ in range(self.num_partitions)]
            for part in to_shuffle:
                for key, value in part:
                    bucket = buckets[stable_hash(key) % self.num_partitions]
                    merge_touches += 1
                    if self._combiner is None:
                        bucket.setdefault(key, []).append(value)
                    elif key in bucket:
                        bucket[key] = self._combiner(bucket[key], value)
                    else:
                        bucket[key] = value
            out = [list(b.items()) for b in buckets]
        self.ctx.tracer.emit(
            Kind.COMPUTE, records=merge_touches,
            flops=merge_touches * self._flops_per_record,
            language=language, scale=shuffle_scale, label=f"{self._label}:merge",
        )
        return out


class _JoinRDD(RDD):
    """Inner equi-join; shuffles both inputs in full (no combining)."""

    def __init__(self, left: RDD, right: RDD, *, language: str | None = None,
                 out_scale: str = DATA, label: str = "") -> None:
        if left.ctx is not right.ctx:
            raise ValueError("cannot join RDDs from different contexts")
        super().__init__(left.ctx, out_scale, (left, right),
                         max(left.num_partitions, right.num_partitions))
        self._op_language = language
        self._label = label

    def _compute(self) -> list[list]:
        left, right = self.parents
        language = self._language(self._op_language)
        sides = []
        for side, rdd in (("left", left), ("right", right)):
            parts = rdd._partitions()
            records = sum(len(p) for p in parts)
            nbytes = sum(self.ctx._records_bytes(p) for p in parts)
            self.ctx.tracer.emit(
                Kind.SHUFFLE, records=records, bytes=nbytes, language=language,
                scale=rdd.scale, label=f"{self._label}:{side}",
            )
            self.ctx.tracer.materialize(
                bytes=nbytes, objects=records, scale=rdd.scale,
                site=Site.CLUSTER, label=f"join-buffer:{self._label}:{side}",
            )
            sides.append(parts)

        left_map: dict = {}
        for part in sides[0]:
            for key, value in part:
                left_map.setdefault(key, []).append(value)
        out: list[tuple] = []
        touches = 0
        for part in sides[1]:
            for key, rvalue in part:
                for lvalue in left_map.get(key, ()):
                    out.append((key, (lvalue, rvalue)))
                    touches += 1
        self.ctx.tracer.emit(
            Kind.COMPUTE, records=touches, language=language,
            scale=self.scale, label=f"{self._label}:probe",
        )
        return _split(out, self.num_partitions)


def _split(data: list, num_partitions: int) -> list[list]:
    """Split ``data`` into at most ``num_partitions`` near-equal chunks.

    Never produces degenerate empty trailing partitions: when there are
    fewer records than requested partitions the result has one record
    per partition (and an empty ``data`` yields a single empty
    partition, so downstream per-partition code still has work units).
    """
    num_partitions = max(1, min(num_partitions, len(data)))
    size, extra = divmod(len(data), num_partitions)
    parts, start = [], 0
    for i in range(num_partitions):
        end = start + size + (1 if i < extra else 0)
        parts.append(data[start:end])
        start = end
    return parts


def _fold(items: list, fn: Callable):
    it = iter(items)
    acc = next(it)
    for item in it:
        acc = fn(acc, item)
    return acc
