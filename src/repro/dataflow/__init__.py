"""Spark-style dataflow engine: lazy RDDs with lineage, shuffles, caching."""

from repro.dataflow.context import Broadcast, SparkContext
from repro.dataflow.rdd import RDD, SourceRDD
from repro.cluster.sizes import estimate_bytes, estimate_records_bytes

__all__ = [
    "Broadcast",
    "RDD",
    "SourceRDD",
    "SparkContext",
    "estimate_bytes",
    "estimate_records_bytes",
]
