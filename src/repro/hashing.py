"""Process-independent hashing for placement decisions.

CPython randomizes ``str``/``bytes`` hashes per process
(``PYTHONHASHSEED``), so the builtin ``hash()`` must never decide which
machine a vertex lands on or which partition a shuffle key falls into:
the same program would place records differently in every interpreter,
and ``repro.bench.pool`` promises that a process-pool run is
byte-identical to a serial one.  :func:`stable_hash` derives the hash
from a canonical byte encoding of the key instead, so placement is a
pure function of the key in every process.
"""

from __future__ import annotations

import hashlib
import zlib

import numpy as np


def _canonical(value) -> bytes:
    """A type-tagged byte encoding; equal keys encode equally.

    Numeric equality crosses types — ``2``, ``2.0`` and ``np.int64(2)``
    are one dict key in Python — so every integral number canonicalizes
    to the same ``i:`` encoding and numpy scalars are unwrapped before
    formatting (their ``repr`` is not their value's).
    """
    if isinstance(value, bytes):
        return b"b:" + value
    if isinstance(value, str):
        return b"s:" + value.encode("utf-8", "surrogatepass")
    if isinstance(value, bool):
        return b"B:1" if value else b"B:0"
    if isinstance(value, (int, np.integer)):
        return b"i:%d" % int(value)
    if isinstance(value, (float, np.floating)):
        out = float(value)
        if out.is_integer():
            return b"i:%d" % int(out)
        return b"f:" + repr(out).encode()
    if isinstance(value, tuple):
        return b"t:" + b"|".join(_canonical(item) for item in value)
    if value is None:
        return b"n:"
    return b"o:" + repr(value).encode()


def stable_hash(value) -> int:
    """A non-negative hash of ``value`` that is identical in every
    process.  Supports the key types the engines place by: ints, strs,
    bytes, floats, None and tuples of those."""
    return zlib.crc32(_canonical(value))


def stable_digest(value, length: int = 16) -> str:
    """A hex content address over the same canonical encoding as
    :func:`stable_hash`.

    Placement decisions only need 32 well-mixed bits, but a content
    address (a workload cache key, an experiment-spec result key) must
    never collide across the lifetime of a store, so it gets a sha256
    prefix instead of a crc.  Both functions share ``_canonical``: two
    values hash equal iff they digest equal.
    """
    return hashlib.sha256(_canonical(value)).hexdigest()[:length]
