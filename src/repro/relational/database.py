"""The SimSQL-style database: tables, views, query entry point."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.cluster.events import FIXED, Kind
from repro.cluster.machine import ClusterSpec
from repro.cluster.tracer import NullTracer, Tracer
from repro.relational.executor import Executor
from repro.relational.optimizer import optimize
from repro.relational.plan import Plan, Scan
from repro.relational.schema import Schema
from repro.relational.table import Table
from repro.stats import make_rng


class Database:
    """Holds base tables, views and versioned random tables.

    ``query`` optimizes and executes a plan, charging the Hadoop
    MapReduce job pipeline SimSQL would compile it to (one job per wide
    operator) plus the HDFS write of the result.
    """

    def __init__(self, cluster: ClusterSpec, tracer: Tracer | None = None,
                 rng: np.random.Generator | None = None) -> None:
        self.cluster = cluster
        self.tracer = tracer if tracer is not None else NullTracer()
        self.rng = rng if rng is not None else make_rng()
        self._tables: dict[str, Table] = {}
        self._views: dict[str, Plan] = {}
        self._executor = Executor(self)

    # ------------------------------------------------------------------

    def create_table(self, name: str, columns: Iterable[str], rows: Iterable[tuple],
                     scale: str = FIXED) -> Table:
        """Store a base table; ``scale`` declares how its cardinality
        grows (``"data"`` for the workload-sized relations)."""
        if name in self._tables or name in self._views:
            raise ValueError(f"relation {name!r} already exists")
        table = Table(name, Schema(tuple(columns)), list(rows), scale)
        self._tables[name] = table
        return table

    def create_view(self, name: str, plan: Plan, materialized: bool = False) -> None:
        """Define a view.  Materialized views are computed immediately
        (the Bayesian Lasso pre-computes its Gram matrix this way);
        virtual views re-run their plan at every reference."""
        if name in self._tables or name in self._views:
            raise ValueError(f"relation {name!r} already exists")
        if materialized:
            result = self.query(plan)
            result.name = name
            self._tables[name] = result
        else:
            self._views[name] = plan

    def store(self, name: str, table: Table) -> None:
        """Store (or replace) a table under ``name``."""
        table.name = name
        self._tables[name] = table

    def drop(self, name: str) -> None:
        self._tables.pop(name, None)
        self._views.pop(name, None)

    def resolve(self, name: str) -> Table:
        """Resolve a relation name for the executor (views run inline)."""
        if name in self._tables:
            return self._tables[name]
        if name in self._views:
            return self._executor.execute(optimize(self._views[name]))
        raise KeyError(f"unknown relation {name!r} (have {sorted(self._tables)})")

    def table(self, name: str) -> Table:
        """Access a stored table without running a query."""
        try:
            return self._tables[name]
        except KeyError:
            raise KeyError(f"unknown table {name!r} (have {sorted(self._tables)})") from None

    def relations(self) -> list[str]:
        return sorted(set(self._tables) | set(self._views))

    # ------------------------------------------------------------------

    def query(self, plan: Plan) -> Table:
        """Optimize, execute, and charge one SQL statement."""
        physical = optimize(plan)
        # One job per wide operator plus the final map/materialize job.
        jobs = 1 + self._executor.count_jobs(physical)
        self.tracer.emit(Kind.JOB, records=jobs, scale=FIXED, label="mapreduce-pipeline")
        result = self._executor.execute(physical)
        self.tracer.emit(Kind.DISK_WRITE, bytes=result.estimated_bytes(),
                         scale=result.scale, label="hdfs-write")
        return result

    def scan(self, name: str) -> Scan:
        """Convenience plan builder for ``SELECT * FROM name``."""
        return Scan(name)
