"""SimSQL-style relational engine with VG functions and random tables."""

from repro.relational.database import Database
from repro.relational.executor import Executor
from repro.relational.expr import absval, col, columns_referenced, exp, lit, log, mod, sqrt
from repro.relational.mcmc import MarkovChain, RandomTable, versioned
from repro.relational.optimizer import optimize
from repro.relational.plan import (
    Alias,
    Distinct,
    GroupBy,
    Join,
    Plan,
    Project,
    Scan,
    Select,
    Union,
    VGOp,
)
from repro.relational.schema import Schema
from repro.relational.table import Table
from repro.relational.vg import (
    CategoricalVG,
    DirichletVG,
    InvGammaVG,
    InvGaussianVG,
    InvWishartVG,
    NormalVG,
    VGFunction,
)

__all__ = [
    "Alias",
    "CategoricalVG",
    "Database",
    "DirichletVG",
    "Distinct",
    "Executor",
    "GroupBy",
    "InvGammaVG",
    "InvGaussianVG",
    "InvWishartVG",
    "Join",
    "MarkovChain",
    "NormalVG",
    "Plan",
    "Project",
    "RandomTable",
    "Scan",
    "Schema",
    "Select",
    "Table",
    "Union",
    "VGFunction",
    "VGOp",
    "absval",
    "col",
    "columns_referenced",
    "exp",
    "lit",
    "log",
    "mod",
    "optimize",
    "sqrt",
    "versioned",
]
