"""A parser for the paper's SimSQL SQL dialect (subset).

The implementation modules build their plans with the Python DSL, but
the paper writes actual SQL, e.g.::

    create view mean_prior(dim_id, dim_val) as
    select dim_id, avg(data_val)
    from data
    group by dim_id;

    with diri_res as Dirichlet
        (select clus_id, pi_prior from cluster)
    select diri_res.out_id, diri_res.prob
    from diri_res;

This module parses that surface into the same :mod:`repro.relational`
plan nodes, so SimSQL-style code can be written as strings.  Supported:

* ``SELECT expr [AS name], ...`` with arithmetic, comparisons,
  ``AND``/``OR``, function calls (``sqrt``/``log``/``exp``/``abs``) and
  the aggregates ``count(*)``/``count``/``sum``/``avg``/``min``/``max``;
* ``FROM rel [AS alias][, rel [AS alias]]...`` — names or parenthesized
  subqueries; comma joins with the ``WHERE`` predicate attached to the
  final join (two-relation queries therefore plan exactly like the
  paper's, including the cross-product quirk for non-equi predicates);
* ``WHERE predicate``;
* ``GROUP BY col, ...`` (aggregates required in the select list);
* ``WITH name AS VGFunction((subquery) [, (subquery)...])`` — each
  parenthesized subquery becomes one VG parameter, named ``p0, p1, ...``
  or per the supplied ``param_names``;
* ``CREATE VIEW name(...) AS select`` / ``CREATE TABLE name(...) AS
  select`` through :func:`execute_statement`.

Deliberately out of scope (the paper never uses them): outer joins,
HAVING, ORDER BY, nested scalar subqueries, set operations.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.relational.expr import Expr, absval, col, exp as exp_fn, lit, log as log_fn, sqrt
from repro.relational.plan import GroupBy, Join, Plan, Project, Scan, Select, VGOp


class SQLSyntaxError(ValueError):
    """The statement is outside the supported dialect subset."""


_TOKEN_RE = re.compile(
    r"""
    \s*(
        (?P<number>\d+\.\d+|\d+|\.\d+)
      | (?P<name>[A-Za-z_][A-Za-z_0-9]*(\[[A-Za-z_0-9\-+ ]+\])?(\.[A-Za-z_][A-Za-z_0-9]*)?)
      | (?P<string>'[^']*')
      | (?P<op><>|<=|>=|[=<>(),;*/+\-])
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "select", "from", "where", "group", "by", "as", "and", "or", "not",
    "with", "create", "view", "table", "avg", "sum", "count", "min", "max",
}


@dataclass(frozen=True)
class Token:
    kind: str  # number | name | string | op
    text: str

    @property
    def lowered(self) -> str:
        return self.text.lower()


def tokenize(sql: str) -> list[Token]:
    tokens: list[Token] = []
    position = 0
    sql = sql.strip()
    while position < len(sql):
        match = _TOKEN_RE.match(sql, position)
        if match is None or match.end() == position:
            raise SQLSyntaxError(f"cannot tokenize at: {sql[position:position + 20]!r}")
        for kind in ("number", "name", "string", "op"):
            text = match.group(kind)
            if text is not None:
                tokens.append(Token(kind, text))
                break
        position = match.end()
    return tokens


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, tokens: list[Token], vg_registry: dict | None = None) -> None:
        self.tokens = tokens
        self.position = 0
        self.vg_registry = vg_registry or {}

    # -- token helpers ---------------------------------------------------

    def peek(self, offset: int = 0) -> Token | None:
        index = self.position + offset
        return self.tokens[index] if index < len(self.tokens) else None

    def advance(self) -> Token:
        token = self.peek()
        if token is None:
            raise SQLSyntaxError("unexpected end of statement")
        self.position += 1
        return token

    def accept(self, text: str) -> bool:
        token = self.peek()
        if token is not None and token.lowered == text:
            self.position += 1
            return True
        return False

    def expect(self, text: str) -> Token:
        token = self.advance()
        if token.lowered != text:
            raise SQLSyntaxError(f"expected {text!r}, got {token.text!r}")
        return token

    def at_end(self) -> bool:
        token = self.peek()
        return token is None or token.text == ";"

    # -- statements --------------------------------------------------------

    def parse_query(self) -> Plan:
        vg_plans: dict[str, Plan] = {}
        while self.accept("with"):
            name = self.advance().text
            self.expect("as")
            vg_plans[name] = self._parse_vg_call()
            self.accept(",")
        plan = self._parse_select(vg_plans)
        if not self.at_end():
            raise SQLSyntaxError(f"trailing tokens from {self.peek().text!r}")
        return plan

    def _parse_vg_call(self) -> Plan:
        vg_name = self.advance().text
        if vg_name not in self.vg_registry:
            raise SQLSyntaxError(
                f"unknown VG function {vg_name!r}; register it in vg_registry"
            )
        entry = self.vg_registry[vg_name]
        vg, param_names, group_key = entry["vg"], entry["params"], entry.get("group_key")
        self.expect("(")
        params: dict[str, Plan] = {}
        index = 0
        next_token = self.peek()
        if next_token is not None and next_token.lowered == "select":
            # Single-parameter form: Dirichlet(select ...).
            params[param_names[index]] = self._parse_select({})
            index += 1
        else:
            # Multi-parameter form: InvGaussian((select ...), (select ...)).
            while True:
                self.expect("(")
                params[param_names[index]] = self._parse_select({})
                self.expect(")")
                index += 1
                if not self.accept(","):
                    break
        self.expect(")")
        if index != len(param_names):
            raise SQLSyntaxError(
                f"{vg_name} expects {len(param_names)} parameter queries, got {index}"
            )
        return VGOp(vg, params, group_key=group_key,
                    out_scale=entry.get("out_scale"))

    # -- SELECT ------------------------------------------------------------

    def _parse_select(self, extra_relations: dict[str, Plan]) -> Plan:
        self.expect("select")
        items = self._parse_select_list()
        self.expect("from")
        relations = self._parse_from(extra_relations)
        predicate = self._parse_expr() if self.accept("where") else None
        group_keys: list[str] | None = None
        if self.accept("group"):
            self.expect("by")
            group_keys = [self._parse_column_name()]
            while self.accept(","):
                group_keys.append(self._parse_column_name())

        plan = self._fold_joins(relations, predicate)
        aggregates = [item for item in items if item[2] is not None]
        if group_keys is not None or aggregates:
            return self._build_group_by(plan, items, group_keys or [])
        return Project(plan, [(name, expr) for name, expr, _ in items])

    def _parse_select_list(self) -> list[tuple[str, Expr, str | None]]:
        """Returns (output name, expression, aggregate kind or None)."""
        items = []
        while True:
            name, expr, agg = self._parse_select_item(len(items))
            items.append((name, expr, agg))
            if not self.accept(","):
                return items

    def _parse_select_item(self, index: int):
        agg = None
        token = self.peek()
        if token is not None and token.lowered in ("sum", "avg", "min", "max", "count") \
                and self.peek(1) is not None and self.peek(1).text == "(":
            agg = self.advance().lowered
            self.expect("(")
            if agg == "count" and self.accept("*"):
                expr = None
            else:
                expr = self._parse_expr()
                if agg == "count":
                    expr = None  # COUNT(x) counts rows like COUNT(*)
            self.expect(")")
        else:
            expr = self._parse_expr()
        if self.accept("as"):
            name = self.advance().text
        elif isinstance(expr, type(col("x"))) and expr is not None:
            name = expr.name.split(".")[-1]
        else:
            name = f"column_{index}"
        return name, expr, agg

    def _parse_from(self, extra_relations: dict[str, Plan]):
        relations: list[tuple[Plan, str | None]] = []
        while True:
            token = self.peek()
            if token is not None and token.text == "(":
                self.advance()
                sub = self._parse_select(extra_relations)
                self.expect(")")
            else:
                name = self.advance().text
                sub = extra_relations.get(name, Scan(name))
            alias = None
            next_token = self.peek()
            if self.accept("as"):
                alias = self.advance().text
            elif (next_token is not None and next_token.kind == "name"
                  and next_token.lowered not in _KEYWORDS):
                alias = self.advance().text
            if alias is not None:
                from repro.relational.plan import Alias

                sub = Alias(sub, alias)
            relations.append((sub, alias))
            if not self.accept(","):
                return [r for r, _ in relations]

    def _fold_joins(self, relations: list[Plan], predicate: Expr | None) -> Plan:
        if len(relations) == 1:
            plan = relations[0]
            return Select(plan, predicate) if predicate is not None else plan
        plan = relations[0]
        for right in relations[1:-1]:
            plan = Join(plan, right)  # cross; predicate attaches at the end
        return Join(plan, relations[-1], predicate=predicate)

    def _build_group_by(self, plan: Plan, items, group_keys: list[str]) -> Plan:
        # Project the grouping keys and aggregate inputs first so the
        # GroupBy sees simple column names.
        pre_outputs: list[tuple[str, Expr]] = []
        aggs: list[tuple[str, str, Expr | None]] = []
        key_names: list[str] = []
        for key in group_keys:
            simple = key.split(".")[-1]
            pre_outputs.append((simple, col(key)))
            key_names.append(simple)
        for slot, (name, expr, agg) in enumerate(items):
            if agg is None:
                # A plain column in an aggregate query must be a key.
                if not isinstance(expr, type(col("x"))) \
                        or expr.name.split(".")[-1] not in key_names:
                    raise SQLSyntaxError(
                        f"non-aggregated select item {name!r} is not a GROUP BY key"
                    )
                continue
            if expr is None:
                aggs.append((name, "count", None))
            else:
                input_name = f"_agg_in_{slot}"
                pre_outputs.append((input_name, expr))
                aggs.append((name, agg, col(input_name)))
        grouped = GroupBy(Project(plan, pre_outputs), keys=key_names, aggs=aggs)
        # Restore the requested output order/names.
        outputs = []
        for name, expr, agg in items:
            source = name if agg is not None else expr.name.split(".")[-1]
            outputs.append((name, col(source)))
        return Project(grouped, outputs)

    # -- expressions --------------------------------------------------------

    def _parse_expr(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self.accept("or"):
            left = left | self._parse_and()
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_comparison()
        while self.accept("and"):
            left = left & self._parse_comparison()
        return left

    def _parse_comparison(self) -> Expr:
        left = self._parse_additive()
        token = self.peek()
        if token is not None and token.text in ("=", "<>", "<", "<=", ">", ">="):
            operator = self.advance().text
            right = self._parse_additive()
            return {
                "=": lambda a, b: a == b,
                "<>": lambda a, b: a != b,
                "<": lambda a, b: a < b,
                "<=": lambda a, b: a <= b,
                ">": lambda a, b: a > b,
                ">=": lambda a, b: a >= b,
            }[operator](left, right)
        return left

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while True:
            if self.accept("+"):
                left = left + self._parse_multiplicative()
            elif self.accept("-"):
                left = left - self._parse_multiplicative()
            else:
                return left

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_unary()
        while True:
            if self.accept("*"):
                left = left * self._parse_unary()
            elif self.accept("/"):
                left = left / self._parse_unary()
            else:
                return left

    def _parse_unary(self) -> Expr:
        if self.accept("-"):
            return lit(0.0) - self._parse_unary()
        return self._parse_primary()

    _FUNCTIONS = {"sqrt": sqrt, "log": log_fn, "exp": exp_fn, "abs": absval}

    def _parse_primary(self) -> Expr:
        token = self.advance()
        if token.text == "(":
            inner = self._parse_expr()
            self.expect(")")
            return inner
        if token.kind == "number":
            value = float(token.text)
            return lit(int(value) if value.is_integer() and "." not in token.text else value)
        if token.kind == "string":
            return lit(token.text[1:-1])
        if token.kind == "name":
            if token.lowered in self._FUNCTIONS and self.accept("("):
                inner = self._parse_expr()
                self.expect(")")
                return self._FUNCTIONS[token.lowered](inner)
            return col(token.text)
        raise SQLSyntaxError(f"unexpected token {token.text!r} in expression")

    def _parse_column_name(self) -> str:
        token = self.advance()
        if token.kind != "name":
            raise SQLSyntaxError(f"expected a column name, got {token.text!r}")
        return token.text


def parse_query(sql: str, vg_registry: dict | None = None) -> Plan:
    """Parse one SELECT (optionally with a WITH...VG prefix) into a plan.

    ``vg_registry`` maps VG-function names appearing in the SQL to
    ``{"vg": VGFunction, "params": [param names in call order],
    "group_key": optional, "out_scale": optional}``.
    """
    return _Parser(tokenize(sql), vg_registry).parse_query()


def execute_statement(db, sql: str, vg_registry: dict | None = None):
    """Execute one statement against a database.

    ``CREATE VIEW name(...) AS select`` defines a view; ``CREATE TABLE
    name(...) AS select`` materializes the query under ``name``; a bare
    ``SELECT`` returns its result table.
    """
    parser = _Parser(tokenize(sql), vg_registry)
    if parser.accept("create"):
        materialize = False
        if parser.accept("table"):
            materialize = True
        else:
            parser.expect("view")
        name = parser.advance().text
        columns: list[str] = []
        if parser.accept("("):
            columns.append(parser.advance().text)
            while parser.accept(","):
                columns.append(parser.advance().text)
            parser.expect(")")
        parser.expect("as")
        plan = parser.parse_query()
        if columns:
            plan = RenameColumns(plan, tuple(columns))
        if materialize:
            result = db.query(plan)
            db.store(name, result)
            return result
        db.create_view(name, plan)
        return None
    plan = parser.parse_query()
    return db.query(plan)


@dataclass
class RenameColumns(Plan):
    """Positionally rename the child's output columns (the declared
    column list of ``CREATE VIEW name(a, b, ...)``)."""

    child: Plan
    columns: tuple[str, ...]

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)
