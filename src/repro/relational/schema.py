"""Relational schemas: named, ordered columns over plain-tuple rows."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Schema:
    """Ordered column names of a relation.

    Rows are plain Python tuples positionally aligned with the schema;
    this keeps the engine honest about SimSQL's tuple-at-a-time nature
    (a d x d matrix really is d^2 rows of ``(i, j, value)``).
    """

    columns: tuple[str, ...]

    def __init__(self, columns) -> None:
        columns = tuple(columns)
        if len(set(columns)) != len(columns):
            raise ValueError(f"duplicate column names in {columns}")
        if not columns:
            raise ValueError("a schema needs at least one column")
        object.__setattr__(self, "columns", columns)

    def __len__(self) -> int:
        return len(self.columns)

    def __contains__(self, name: str) -> bool:
        return name in self.columns

    def index(self, name: str) -> int:
        try:
            return self.columns.index(name)
        except ValueError:
            raise KeyError(f"no column {name!r} in schema {self.columns}") from None

    def resolve(self, name: str) -> int:
        """SQL-style resolution: exact match, else a qualified name's
        bare suffix, else a bare name's unique qualified match."""
        if name in self.columns:
            return self.columns.index(name)
        if "." in name:
            suffix = name.split(".")[-1]
            if suffix in self.columns:
                return self.columns.index(suffix)
        else:
            qualified = [i for i, c in enumerate(self.columns)
                         if c.endswith("." + name)]
            if len(qualified) == 1:
                return qualified[0]
            if len(qualified) > 1:
                raise KeyError(f"ambiguous column {name!r} in schema {self.columns}")
        raise KeyError(f"no column {name!r} in schema {self.columns}")

    def has(self, name: str) -> bool:
        """Whether :meth:`resolve` would succeed."""
        try:
            self.resolve(name)
        except KeyError:
            return False
        return True

    def rename(self, mapping: dict[str, str]) -> "Schema":
        return Schema(tuple(mapping.get(c, c) for c in self.columns))

    def concat(self, other: "Schema") -> "Schema":
        """Schema of a join output; clashing names get a ``_r`` suffix."""
        right = [c if c not in self.columns else f"{c}_r" for c in other.columns]
        return Schema(self.columns + tuple(right))
