"""Rule-based plan optimizer, SimSQL-quirk included.

The only decision that matters for the paper's findings is the join
strategy: a conjunction of *plain column equalities* becomes a
repartition hash join; anything else — crucially, an equality with
arithmetic on one side such as ``t1.curPos = t2.curPos + 1`` — is
"implemented inefficiently as a cross-product" (paper, Section 7.2).
The HMM implementation works around it exactly as the paper describes:
by storing ``nextPos`` explicitly so the join predicate becomes a plain
equality.
"""

from __future__ import annotations

from repro.relational.expr import Expr, as_column_equality, conjuncts
from repro.relational.plan import (
    Alias,
    Distinct,
    GroupBy,
    Join,
    Plan,
    Project,
    Scan,
    Select,
    Union,
    VGOp,
)


def optimize(plan: Plan) -> Plan:
    """Annotate every join in the tree with a physical strategy."""
    if isinstance(plan, Scan):
        return plan
    if isinstance(plan, Alias):
        return Alias(optimize(plan.child), plan.alias)
    if isinstance(plan, Select):
        return Select(optimize(plan.child), plan.predicate)
    if isinstance(plan, Project):
        return Project(optimize(plan.child), plan.outputs)
    if isinstance(plan, Distinct):
        return Distinct(optimize(plan.child))
    if isinstance(plan, Union):
        return Union([optimize(p) for p in plan.inputs])
    if isinstance(plan, GroupBy):
        return GroupBy(optimize(plan.child), plan.keys, plan.aggs, out_scale=plan.out_scale)
    if isinstance(plan, VGOp):
        return VGOp(
            plan.vg,
            {name: optimize(p) for name, p in plan.params.items()},
            group_key=plan.group_key,
            out_scale=plan.out_scale,
            flops_scale=plan.flops_scale,
        )
    if isinstance(plan, Join):
        return _plan_join(plan)
    if type(plan).__name__ == "RenameColumns":
        from repro.relational.sqlparse import RenameColumns

        return RenameColumns(optimize(plan.child), plan.columns)
    raise TypeError(f"unknown plan node {type(plan).__name__}")


def _plan_join(join: Join) -> Join:
    left = optimize(join.left)
    right = optimize(join.right)
    if join.predicate is None:
        return Join(left, right, None, strategy="cross", out_scale=join.out_scale)

    equi_keys: list[tuple[str, str]] = []
    residual: list[Expr] = []
    for predicate in conjuncts(join.predicate):
        pair = as_column_equality(predicate)
        if pair is not None:
            equi_keys.append(pair)
        else:
            residual.append(predicate)

    if equi_keys:
        residual_expr = _conjoin(residual)
        return Join(
            left, right, join.predicate,
            strategy="hash", equi_keys=equi_keys, residual=residual_expr,
            out_scale=join.out_scale,
        )
    # No recognizable key: the SimSQL cross-product quirk.
    return Join(
        left, right, join.predicate,
        strategy="cross", residual=join.predicate, out_scale=join.out_scale,
    )


def _conjoin(predicates: list[Expr]) -> Expr | None:
    if not predicates:
        return None
    out = predicates[0]
    for predicate in predicates[1:]:
        out = out & predicate
    return out
