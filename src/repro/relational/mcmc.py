"""Versioned random tables and the Markov-chain driver.

SimSQL's defining capability (paper Section 4.2): SQL definitions of
*random tables* that may be mutually recursive across an iteration
index, e.g.::

    create table clus_prob[i](clus_id, prob) as
    with diri_res as Dirichlet(...membership[i-1]...)
    select diri_res.out_id, diri_res.prob from diri_res;

Here a :class:`RandomTable` supplies two plan builders: ``init`` for
version 0 and ``update`` for version ``i`` (which may reference any
table's version ``i-1`` through :func:`versioned`).  The
:class:`MarkovChain` driver executes one database query per random
table per iteration, exactly as SimSQL unrolls the recursion, and
garbage-collects old versions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.relational.database import Database
from repro.relational.plan import Plan


def versioned(name: str, index: int) -> str:
    """The stored name of version ``index`` of random table ``name``."""
    if index < 0:
        raise ValueError(f"version index must be non-negative, got {index}")
    return f"{name}[{index}]"


@dataclass(frozen=True)
class RandomTable:
    """One recursively defined random table.

    ``init`` builds the version-0 plan; ``update(db, i)`` builds the
    version-``i`` plan, referencing prior versions via
    ``versioned(other, i - 1)`` (or ``i`` for tables updated earlier in
    the same iteration, matching SimSQL's intra-iteration ordering).
    """

    name: str
    init: Callable[[Database], Plan]
    update: Callable[[Database, int], Plan]


class MarkovChain:
    """Sequences random-table updates into an MCMC simulation."""

    def __init__(self, db: Database, tables: list[RandomTable], keep_versions: int = 2) -> None:
        if keep_versions < 2:
            raise ValueError("need to keep at least the current and previous versions")
        names = [t.name for t in tables]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate random-table names: {names}")
        self.db = db
        self.tables = list(tables)
        self.keep_versions = keep_versions
        self._version = -1

    @property
    def version(self) -> int:
        """Index of the most recently completed iteration (-1 = none)."""
        return self._version

    def initialize(self) -> None:
        """Run every table's version-0 definition."""
        if self._version >= 0:
            raise RuntimeError("chain already initialized")
        for table in self.tables:
            result = self.db.query(table.init(self.db))
            self.db.store(versioned(table.name, 0), result)
        self._version = 0

    def step(self) -> int:
        """Advance the chain one iteration; returns the new version."""
        if self._version < 0:
            raise RuntimeError("initialize() must run before step()")
        i = self._version + 1
        for table in self.tables:
            result = self.db.query(table.update(self.db, i))
            self.db.store(versioned(table.name, i), result)
        self._version = i
        self._collect_garbage()
        return i

    def current(self, name: str):
        """The latest stored version of random table ``name``."""
        return self.db.table(versioned(name, self._version))

    def _collect_garbage(self) -> None:
        horizon = self._version - self.keep_versions + 1
        if horizon <= 0:
            return
        for table in self.tables:
            self.db.drop(versioned(table.name, horizon - 1))
