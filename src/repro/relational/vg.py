"""Variable-generation (VG) functions: SimSQL's randomized table-valued UDFs.

A VG function receives one or more parameter tables (as lists of rows)
and emits output rows.  In SimSQL these are C++ plug-ins; the cost model
therefore charges their internal work at C++ rates while charging the
*output tuples* at relational per-tuple rates — the imbalance the paper
highlights for the HMM/LDA super-vertex codes (Section 7.6).

The library functions here mirror the ones the paper names: Dirichlet,
Normal (multivariate), InvWishart, InvGamma, InvGaussian, Categorical.
Model implementations add bespoke ones (e.g. ``multinomial_membership``
for the GMM) in :mod:`repro.impls.simsql`.
"""

from __future__ import annotations

import numpy as np

from repro.stats import (
    Categorical,
    Dirichlet,
    InverseGamma,
    InverseGaussian,
    InverseWishart,
    MultivariateNormal,
)


class VGFunction:
    """Base class: subclasses define ``output_columns`` and ``invoke``."""

    name: str = "vg"
    output_columns: tuple[str, ...] = ()

    def invoke(self, rng: np.random.Generator, params: dict[str, list[tuple]]) -> list[tuple]:
        raise NotImplementedError

    def invoke_batch(
        self,
        rng: np.random.Generator,
        grouped: list[tuple[tuple, dict[str, list[tuple]]]],
    ) -> list[tuple] | None:
        """Optional batched invocation over every group of one VG call.

        ``grouped`` is the executor's ``(key, rows_by_param)`` list.  An
        implementation returns the flat output-row list with group keys
        prepended — exactly what the per-group ``invoke`` loop builds —
        or ``None`` to decline, in which case the executor falls back to
        that loop.  Batches must consume the draw stream bitwise like
        the sequential invokes (``tests/test_kernel_equivalence.py``
        gates each implementation), so simulated results are identical
        with the host fast path on or off.
        """
        return None

    def _strip_batch(self, rng, grouped):
        """Dispatch-stripped batch plan: the identical scalar sampler per
        group, inline and in group order — one batched invocation instead
        of the executor's per-group loop.  Bitwise-equal by construction;
        used by samplers whose draws interleave per group and cannot
        merge into one block.
        """
        return [key + tuple(out)
                for key, params in grouped
                for out in self.invoke(rng, params)]

    def flops_per_invocation(self, params: dict[str, list[tuple]]) -> float:
        """Rough internal FLOP count of one invocation, for the cost model."""
        return 50.0

    @staticmethod
    def _require(params: dict[str, list[tuple]], name: str) -> list[tuple]:
        if name not in params:
            raise KeyError(f"VG function missing parameter table {name!r} (have {sorted(params)})")
        return params[name]


class DirichletVG(VGFunction):
    """``Dirichlet(select id, alpha ...)`` -> rows ``(out_id, prob)``."""

    name = "Dirichlet"
    output_columns = ("out_id", "prob")

    def invoke(self, rng, params):
        rows = sorted(self._require(params, "alpha"))
        ids = [r[0] for r in rows]
        alpha = np.array([r[1] for r in rows], dtype=float)
        probs = Dirichlet(alpha).sample(rng)
        return list(zip(ids, probs.tolist()))

    invoke_batch = VGFunction._strip_batch

    def flops_per_invocation(self, params):
        return 20.0 * len(params.get("alpha", ()))


class CategoricalVG(VGFunction):
    """``Categorical(select id, weight ...)`` -> one row ``(choice,)``."""

    name = "Categorical"
    output_columns = ("choice",)

    def invoke(self, rng, params):
        rows = sorted(self._require(params, "weights"))
        ids = [r[0] for r in rows]
        weights = np.array([r[1] for r in rows], dtype=float)
        choice = Categorical(weights).sample(rng)
        return [(ids[choice],)]

    invoke_batch = VGFunction._strip_batch

    def flops_per_invocation(self, params):
        return 5.0 * len(params.get("weights", ()))


class NormalVG(VGFunction):
    """Multivariate ``Normal(mean query, cov query)`` -> ``(dim_id, value)``.

    ``mean`` rows are ``(dim_id, value)``; ``cov`` rows are
    ``(dim_id1, dim_id2, value)``.
    """

    name = "Normal"
    output_columns = ("dim_id", "value")

    def invoke(self, rng, params):
        mean_rows = sorted(self._require(params, "mean"))
        dims = [r[0] for r in mean_rows]
        index = {d: i for i, d in enumerate(dims)}
        mean = np.array([r[1] for r in mean_rows], dtype=float)
        cov = np.zeros((len(dims), len(dims)))
        for d1, d2, value in self._require(params, "cov"):
            cov[index[d1], index[d2]] = value
        draw = MultivariateNormal(mean, cov).sample(rng)
        return list(zip(dims, draw.tolist()))

    invoke_batch = VGFunction._strip_batch

    def flops_per_invocation(self, params):
        d = max(1, len(params.get("mean", ())))
        return float(d**3 + 2 * d**2)  # Cholesky + transform


class InvWishartVG(VGFunction):
    """``InvWishart(scale query, df query)`` -> ``(dim_id1, dim_id2, value)``."""

    name = "InvWishart"
    output_columns = ("dim_id1", "dim_id2", "value")

    def invoke(self, rng, params):
        scale_rows = self._require(params, "scale")
        dims = sorted({r[0] for r in scale_rows} | {r[1] for r in scale_rows})
        index = {d: i for i, d in enumerate(dims)}
        scale = np.zeros((len(dims), len(dims)))
        for d1, d2, value in scale_rows:
            scale[index[d1], index[d2]] = value
        (df,), = self._require(params, "df")
        draw = InverseWishart(float(df), scale).sample(rng)
        return [
            (d1, d2, float(draw[index[d1], index[d2]]))
            for d1 in dims
            for d2 in dims
        ]

    invoke_batch = VGFunction._strip_batch

    def flops_per_invocation(self, params):
        d = max(1, int(np.sqrt(len(params.get("scale", (1,))))))
        return float(3 * d**3)


class InvGammaVG(VGFunction):
    """``InvGamma(shape query, scale query)`` -> one row ``(value,)``."""

    name = "InvGamma"
    output_columns = ("value",)

    def invoke(self, rng, params):
        (shape,), = self._require(params, "shape")
        (scale,), = self._require(params, "scale")
        return [(float(InverseGamma(float(shape), float(scale)).sample(rng)),)]

    invoke_batch = VGFunction._strip_batch


class InvGaussianVG(VGFunction):
    """``InvGaussian(mu query, lambda query)`` -> one row ``(value,)``.

    The Bayesian Lasso's ``tau`` update (paper Section 6.2) invokes this
    once per regressor.
    """

    name = "InvGaussian"
    output_columns = ("value",)

    def invoke(self, rng, params):
        (mu,), = self._require(params, "mu")
        (lam,), = self._require(params, "lam")
        return [(float(InverseGaussian(float(mu), float(lam)).sample(rng)),)]

    def invoke_batch(self, rng, grouped):
        """One pass over all regressor groups.

        The MSH sampler interleaves its normal and uniform draws per
        invocation, so the draws themselves cannot be merged into one
        block without changing the stream; the batch instead strips the
        per-group executor dispatch and emits the rows directly, calling
        the identical scalar sampler in group order.
        """
        out = []
        for key, params in grouped:
            (mu,), = self._require(params, "mu")
            (lam,), = self._require(params, "lam")
            out.append(key + (float(InverseGaussian(float(mu), float(lam)).sample(rng)),))
        return out
