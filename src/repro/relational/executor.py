"""Plan executor: evaluates logical plans tuple-at-a-time, with costs.

The executor is deliberately a *tuple engine*: every row of every
intermediate result really exists as a Python tuple and is charged at
SimSQL's per-tuple rate.  That is the paper's central SimSQL finding —
"a 1,000 by 1,000 matrix is pushed through the system as a set of one
million tuples" (Section 10) — so the engine must live it, not model it.

Each executed query is also charged as a pipeline of Hadoop MapReduce
jobs (one per wide operator), with intermediate results written to and
re-read from HDFS, which is where SimSQL's high fixed per-iteration cost
comes from.  Aggregation hash tables are *spillable*: SimSQL degrades to
out-of-core processing instead of failing, reproducing the paper's
"never failed" observation.
"""

from __future__ import annotations

import numpy as np

from repro import fastpath
from repro.cluster.costmodel import combine_scales
from repro.cluster.events import FIXED, Kind, Site
from repro.relational.plan import (
    Alias,
    Distinct,
    GroupBy,
    Join,
    Plan,
    Project,
    Scan,
    Select,
    Union,
    VGOp,
)
from repro.relational.schema import Schema
from repro.relational.table import Table

#: Combining (a Hadoop combiner / pre-aggregation) is considered
#: effective when the observed group count is at most this fraction of
#: the input cardinality; the group count is then treated as
#: asymptotically fixed unless the plan says otherwise.
COMBINE_EFFECTIVE_FRACTION = 0.5


class Executor:
    """Evaluates optimized plans against a database."""

    def __init__(self, db) -> None:
        self.db = db

    # ------------------------------------------------------------------

    def execute(self, plan: Plan) -> Table:
        handler = self._HANDLERS.get(type(plan))
        if handler is None:
            if type(plan).__name__ == "RenameColumns":
                return self._rename_columns(plan)
            raise TypeError(f"no executor for plan node {type(plan).__name__}")
        return handler(self, plan)

    def _rename_columns(self, plan) -> Table:
        child = self.execute(plan.child)
        if len(plan.columns) != len(child.schema):
            raise ValueError(
                f"declared {len(plan.columns)} columns but the query "
                f"produces {len(child.schema)}"
            )
        return Table("", Schema(plan.columns), child.rows, child.scale)

    def count_jobs(self, plan: Plan) -> int:
        """Wide operators in the plan — each costs one MapReduce job
        (the caller adds the final map/materialize job)."""
        wide = 1 if isinstance(plan, (Join, GroupBy, Distinct)) else 0
        return wide + sum(self.count_jobs(child) for child in plan.children())

    # ------------------------------------------------------------------

    def _scan(self, plan: Scan) -> Table:
        table = self.db.resolve(plan.table)
        self._tracer.emit(
            Kind.DISK_READ, bytes=table.estimated_bytes(), scale=table.scale,
            label=f"scan:{plan.table}",
        )
        self._touch(len(table), table.scale, label=f"scan:{plan.table}")
        return Table("", table.schema, list(table.rows), table.scale)

    def _alias(self, plan: Alias) -> Table:
        child = self.execute(plan.child)
        schema = Schema(tuple(f"{plan.alias}.{c}" for c in child.schema.columns))
        return Table("", schema, child.rows, child.scale)

    def _select(self, plan: Select) -> Table:
        child = self.execute(plan.child)
        predicate = plan.predicate.bind(child.schema)
        self._touch(len(child), child.scale, label="select")
        rows = [row for row in child.rows if predicate(row)]
        return Table("", child.schema, rows, child.scale)

    def _project(self, plan: Project) -> Table:
        # Projection is fused into the operator that consumes it (it
        # never runs as its own pass in an MR pipeline), so it carries
        # no per-tuple charge of its own.
        child = self.execute(plan.child)
        names = [name for name, _ in plan.outputs]
        fns = [expr.bind(child.schema) for _, expr in plan.outputs]
        rows = [tuple(fn(row) for fn in fns) for row in child.rows]
        return Table("", Schema(names), rows, child.scale)

    def _union(self, plan: Union) -> Table:
        children = [self.execute(p) for p in plan.inputs]
        if not children:
            raise ValueError("union of no inputs")
        schema = children[0].schema
        for child in children[1:]:
            if len(child.schema) != len(schema):
                raise ValueError("union inputs must have equal arity")
        rows = [row for child in children for row in child.rows]
        scales = {c.scale for c in children}
        scale = scales.pop() if len(scales) == 1 else max(scales - {FIXED})
        return Table("", schema, rows, scale)

    def _distinct(self, plan: Distinct) -> Table:
        child = self.execute(plan.child)
        self._touch(len(child), child.scale, label="distinct")
        seen = dict.fromkeys(child.rows)
        self._shuffle_aggregated(len(child), len(seen), child, None, label="distinct")
        return Table("", child.schema, list(seen), child.scale)

    # -- joins ----------------------------------------------------------

    def _join(self, plan: Join) -> Table:
        if not plan.strategy:
            raise ValueError("join was not planned; run the optimizer first")
        left = self.execute(plan.left)
        right = self.execute(plan.right)
        out_schema = left.schema.concat(right.schema)
        if plan.strategy == "hash":
            rows = self._hash_join(plan, left, right, out_schema)
        else:
            rows = self._cross_join(plan, left, right, out_schema)
        scale = plan.out_scale or self._join_out_scale(left, right)
        return Table("", out_schema, rows, scale)

    def _hash_join(self, plan: Join, left: Table, right: Table, out_schema: Schema) -> list[tuple]:
        # A model-sized (FIXED) side is broadcast instead of repartitioned
        # — the map-side join any MR compiler performs for small tables.
        fixed_sides = [t for t in (left, right) if t.scale == FIXED]
        if fixed_sides and len(fixed_sides) < 2:
            self._tracer.emit(
                Kind.BROADCAST, bytes=fixed_sides[0].estimated_bytes(),
                language="sql", scale=FIXED, label="join:map-side-broadcast",
            )
        else:
            # Repartition both sides on the join key over the network.
            for side in (left, right):
                self._tracer.emit(
                    Kind.SHUFFLE, records=len(side), bytes=side.estimated_bytes(),
                    language="sql", scale=side.scale, label="join:repartition",
                )
        self._tracer.materialize(
            bytes=left.estimated_bytes(), objects=len(left),
            scale=left.scale, site=Site.CLUSTER, spillable=True, label="join:build",
        )
        l_idx, r_idx = self._resolve_keys(plan, left.schema, right.schema)
        residual = plan.residual.bind(out_schema) if plan.residual is not None else None
        out = []
        if fastpath.enabled() and len(l_idx) == 1:
            # Single equi-key: index the build side on the bare column
            # value, skipping one tuple allocation per row on both sides.
            # Tuple keys delegate hashing/equality to their elements, so
            # the grouping (and the joined output) is identical.
            li, ri = l_idx[0], r_idx[0]
            build: dict = {}
            for row in left.rows:
                build.setdefault(row[li], []).append(row)
            for rrow in right.rows:
                for lrow in build.get(rrow[ri], ()):
                    joined = lrow + rrow
                    if residual is None or residual(joined):
                        out.append(joined)
        else:
            build = {}
            for row in left.rows:
                build.setdefault(tuple(row[i] for i in l_idx), []).append(row)
            for rrow in right.rows:
                for lrow in build.get(tuple(rrow[i] for i in r_idx), ()):
                    joined = lrow + rrow
                    if residual is None or residual(joined):
                        out.append(joined)
        # Build and probe are linear per side; output tuples are
        # pipelined into the parent operator (charged there).
        self._touch(len(left), left.scale, label="join:build-touch")
        self._touch(len(right), right.scale, label="join:probe")
        return out

    def _cross_join(self, plan: Join, left: Table, right: Table, out_schema: Schema) -> list[tuple]:
        # The quirk path: broadcast one side, nested-loop over the product.
        smaller = left if len(left) <= len(right) else right
        self._tracer.emit(
            Kind.BROADCAST, bytes=smaller.estimated_bytes(), language="sql",
            scale=smaller.scale, label="join:broadcast",
        )
        pairs = len(left) * len(right)
        self._touch(pairs, combine_scales(left.scale, right.scale), label="join:cross")
        residual = plan.residual.bind(out_schema) if plan.residual is not None else None
        out = []
        for lrow in left.rows:
            for rrow in right.rows:
                joined = lrow + rrow
                if residual is None or residual(joined):
                    out.append(joined)
        return out

    @staticmethod
    def _join_out_scale(left: Table, right: Table) -> str:
        if left.scale == right.scale:
            return left.scale
        return combine_scales(left.scale, right.scale)

    def _resolve_keys(self, plan: Join, left: Schema, right: Schema) -> tuple[list[int], list[int]]:
        left_idx, right_idx = [], []
        for a, b in plan.equi_keys:
            if left.has(a) and right.has(b):
                left_idx.append(left.resolve(a))
                right_idx.append(right.resolve(b))
            elif left.has(b) and right.has(a):
                left_idx.append(left.resolve(b))
                right_idx.append(right.resolve(a))
            else:
                raise KeyError(
                    f"join key ({a}, {b}) not found across schemas "
                    f"{left.columns} / {right.columns}"
                )
        return left_idx, right_idx

    # -- aggregation -----------------------------------------------------

    def _group_by(self, plan: GroupBy) -> Table:
        child = self.execute(plan.child)
        key_idx = [child.schema.resolve(k) for k in plan.keys]
        agg_fns = []
        for name, kind, expr in plan.aggs:
            if kind not in ("sum", "count", "avg", "min", "max"):
                raise ValueError(f"unknown aggregate {kind!r} for {name!r}")
            agg_fns.append((name, kind, expr.bind(child.schema) if expr is not None else None))

        self._touch(len(child), child.scale, label="group:map")

        groups = None
        if fastpath.enabled() and child.rows:
            groups = self._group_by_columnar(child.rows, key_idx, agg_fns)
        if groups is None:
            groups = {}
            for row in child.rows:
                key = tuple(row[i] for i in key_idx)
                state = groups.get(key)
                if state is None:
                    state = [_agg_init(kind) for _, kind, _ in plan.aggs]
                    groups[key] = state
                for slot, (_, kind, fn) in enumerate(agg_fns):
                    _agg_step(state, slot, kind, fn, row)

        out_scale = self._shuffle_aggregated(len(child), len(groups), child, plan.out_scale,
                                             label="group:shuffle")
        rows = [key + tuple(_agg_final(state[i], kind) for i, (_, kind, _) in enumerate(agg_fns))
                for key, state in groups.items()]
        schema = Schema(tuple(plan.keys) + tuple(name for name, _, _ in plan.aggs))
        return Table("", schema, rows, out_scale)

    def _group_by_columnar(self, rows: list, key_idx: list,
                           agg_fns: list) -> dict | None:
        """Columnar aggregation; equals the per-row ``_agg_step`` fold.

        One pass factorizes rows into group ids (first-occurrence order,
        like dict insertion), then each aggregate runs as a NumPy
        scatter-reduce.  ``np.add.at`` / ``np.minimum.at`` apply updates
        in index order, i.e. the same left fold as the scalar code; sums
        seed with each group's first value (the scalar fold starts from
        it, not from 0.0) while averages seed with 0.0 (the scalar state
        does).  Returns ``None`` to fall back on non-numeric columns,
        NaNs, or signed zeros, where the scalar fold's tie-breaking and
        type promotion could differ.
        """
        gid_of: dict[tuple, int] = {}
        gids = []
        first_rows = []
        for pos, row in enumerate(rows):
            key = tuple(row[i] for i in key_idx)
            gid = gid_of.get(key)
            if gid is None:
                gid = len(gid_of)
                gid_of[key] = gid
                first_rows.append(pos)
            gids.append(gid)
        n_groups = len(gid_of)
        gid_arr = np.asarray(gids)
        first_arr = np.asarray(first_rows)
        rest = np.ones(len(rows), dtype=bool)
        rest[first_arr] = False

        columns = []
        for _, kind, fn in agg_fns:
            if kind == "count":
                columns.append(np.bincount(gid_arr, minlength=n_groups).tolist())
                continue
            values = np.asarray([fn(row) for row in rows])
            if values.ndim != 1 or values.dtype.kind not in "iuf":
                return None
            if values.dtype.kind == "f":
                if np.isnan(values).any():
                    return None
                if kind in ("min", "max") and np.any((values == 0)
                                                     & np.signbit(values)):
                    return None
            if kind == "sum":
                out = values[first_arr].astype(values.dtype, copy=True)
                np.add.at(out, gid_arr[rest], values[rest])
            elif kind == "avg":
                total = np.zeros(n_groups)
                np.add.at(total, gid_arr, values)
                counts = np.bincount(gid_arr, minlength=n_groups)
                columns.append(list(zip(total.tolist(), counts.tolist())))
                continue
            elif kind == "min":
                out = values[first_arr].astype(values.dtype, copy=True)
                np.minimum.at(out, gid_arr[rest], values[rest])
            else:  # max
                out = values[first_arr].astype(values.dtype, copy=True)
                np.maximum.at(out, gid_arr[rest], values[rest])
            columns.append(out.tolist())
        return {key: [column[gid] for column in columns]
                for key, gid in gid_of.items()}

    def _shuffle_aggregated(self, n_in: int, n_groups: int, child: Table,
                            out_scale: str | None, label: str) -> str:
        """Charge the shuffle of a (possibly combined) aggregation.

        When combining is effective (few groups), each mapper emits at
        most ``groups`` records, so the shuffled volume is
        ``groups x partitions`` and asymptotically fixed; when every row
        is its own group, the whole input shuffles at the input's scale.
        """
        partitions = self.db.cluster.total_cores
        bytes_per_row = child.estimated_bytes() / max(1, len(child))
        combined = n_groups <= COMBINE_EFFECTIVE_FRACTION * n_in
        if out_scale is None:
            out_scale = FIXED if combined else child.scale
        if combined and out_scale == FIXED:
            # Each mapper emits at most one combined record per group; at
            # paper scale the input vastly exceeds groups x partitions,
            # so that product IS the shuffled volume (no laptop-biased
            # min against the sample-sized input).
            records = n_groups * partitions
        else:
            records = n_in if out_scale == child.scale else n_groups
        self._tracer.emit(
            Kind.SHUFFLE, records=records, bytes=records * bytes_per_row,
            language="sql", scale=out_scale if records != n_in else child.scale,
            label=label,
        )
        self._tracer.materialize(
            bytes=n_groups * bytes_per_row, objects=n_groups, scale=out_scale,
            site=Site.CLUSTER, spillable=True, label=f"{label}:hashtable",
        )
        self._touch(records, out_scale if records != n_in else child.scale,
                    label=f"{label}:reduce")
        return out_scale

    # -- VG functions ------------------------------------------------------

    def _vg(self, plan: VGOp) -> Table:
        params = {name: self.execute(p) for name, p in plan.params.items()}
        vg = plan.vg
        # Parameterizing the VG function consumes every input row as a
        # tuple (the word-based LDA's theta fan-out is data x topics
        # rows per iteration — the 16-hour entry of Figure 4(a)).
        for name, table in params.items():
            self._touch(len(table), table.scale, label=f"vg:{vg.name}:param:{name}")
        if plan.group_key is None:
            grouped = [((), {name: t.rows for name, t in params.items()})]
            invocation_scale = FIXED
            key_cols: tuple[str, ...] = ()
        else:
            grouped, invocation_scale = self._group_params(plan.group_key, params)
            key_cols = (plan.group_key,)

        out_rows: list[tuple] = []
        sample = grouped[0][1] if grouped else {}
        total_flops = len(grouped) * vg.flops_per_invocation(sample)
        if plan.flops_scale is not None and plan.flops_scale != invocation_scale:
            self._tracer.emit(
                Kind.COMPUTE, records=len(grouped), language="cpp",
                scale=invocation_scale, label=f"vg:{vg.name}",
            )
            self._tracer.emit(
                Kind.COMPUTE, flops=total_flops, language="cpp",
                scale=plan.flops_scale, label=f"vg:{vg.name}:bulk",
            )
        else:
            self._tracer.emit(
                Kind.COMPUTE, records=len(grouped), flops=total_flops,
                language="cpp", scale=invocation_scale, label=f"vg:{vg.name}",
            )
        batched = vg.invoke_batch(self.db.rng, grouped) if fastpath.enabled() else None
        if batched is not None:
            fastpath.record_batch(f"vg:{vg.name}")
            out_rows = list(batched)
        else:
            if fastpath.enabled() and grouped:
                fastpath.record_decline(f"vg:{vg.name}")
            for key, rows_by_param in grouped:
                for out in vg.invoke(self.db.rng, rows_by_param):
                    out_rows.append(key + tuple(out))
        out_scale = plan.out_scale or invocation_scale
        # Every generated value leaves the VG function as a tuple and
        # re-enters the relational engine (the paper's Section 7.6 cost).
        self._touch(len(out_rows), out_scale, label=f"vg:{vg.name}:emit")
        schema = Schema(key_cols + tuple(vg.output_columns))
        return Table("", schema, out_rows, out_scale)

    def _group_params(self, key: str, params: dict[str, Table]):
        """Partition parameter tables by ``key``; keyless tables broadcast."""
        keyed = {name: t for name, t in params.items() if key in t.schema}
        if not keyed:
            raise KeyError(f"no VG parameter table carries group key {key!r}")
        broadcast = {name: t.rows for name, t in params.items() if key not in t.schema}
        buckets: dict[object, dict[str, list[tuple]]] = {}
        for name, table in keyed.items():
            idx = table.schema.index(key)
            keep = [i for i in range(len(table.schema)) if i != idx]
            for row in table.rows:
                bucket = buckets.setdefault(row[idx], {n: [] for n in keyed})
                bucket[name].append(tuple(row[i] for i in keep))
        grouped = [
            ((key_value,), {**rows_by_param, **broadcast})
            for key_value, rows_by_param in sorted(buckets.items())
        ]
        scale = max((t.scale for t in keyed.values()), key=lambda s: s != FIXED)
        return grouped, scale

    # ------------------------------------------------------------------

    def _touch(self, records: float, scale: str, label: str) -> None:
        """Per-tuple relational processing cost."""
        self._tracer.emit(Kind.COMPUTE, records=records, language="sql",
                          scale=scale, label=label)

    @property
    def _tracer(self):
        return self.db.tracer

    _HANDLERS = {}


Executor._HANDLERS = {
    Scan: Executor._scan,
    Alias: Executor._alias,
    Select: Executor._select,
    Project: Executor._project,
    Union: Executor._union,
    Distinct: Executor._distinct,
    Join: Executor._join,
    GroupBy: Executor._group_by,
    VGOp: Executor._vg,
}


def _agg_init(kind: str):
    if kind == "count":
        return 0
    if kind == "avg":
        return (0.0, 0)
    return None


def _agg_step(state: list, slot: int, kind: str, fn, row: tuple) -> None:
    if kind == "count":
        state[slot] += 1
        return
    value = fn(row)
    current = state[slot]
    if kind == "sum":
        state[slot] = value if current is None else current + value
    elif kind == "avg":
        total, count = current
        state[slot] = (total + value, count + 1)
    elif kind == "min":
        state[slot] = value if current is None or value < current else current
    elif kind == "max":
        state[slot] = value if current is None or value > current else current


def _agg_final(state, kind: str):
    if kind == "avg":
        total, count = state
        if count == 0:
            raise ValueError("avg over an empty group")
        return total / count
    return state
