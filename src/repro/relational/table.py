"""Table storage for the SimSQL-style engine."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.events import DATA
from repro.cluster.sizes import estimate_records_bytes
from repro.relational.schema import Schema


@dataclass
class Table:
    """A named relation: schema + rows + the scale group its cardinality
    belongs to (``"data"`` tables grow with the workload; model-sized
    tables are ``FIXED``)."""

    name: str
    schema: Schema
    rows: list[tuple] = field(default_factory=list)
    scale: str = DATA

    def __post_init__(self) -> None:
        if not isinstance(self.schema, Schema):
            self.schema = Schema(self.schema)
        width = len(self.schema)
        for row in self.rows:
            if len(row) != width:
                raise ValueError(
                    f"row {row!r} has {len(row)} fields, schema {self.schema.columns} has {width}"
                )

    def __len__(self) -> int:
        return len(self.rows)

    def column(self, name: str) -> list:
        idx = self.schema.index(name)
        return [row[idx] for row in self.rows]

    def to_dicts(self) -> list[dict]:
        cols = self.schema.columns
        return [dict(zip(cols, row)) for row in self.rows]

    def estimated_bytes(self) -> float:
        """Approximate on-disk footprint (sampled; fields may hold
        blobs such as a super vertex's point matrix)."""
        framing = len(self.rows) * 8.0
        return estimate_records_bytes(self.rows) + framing
