"""Logical plan nodes for the relational engine.

Plans are built with a small Python DSL (the paper's SQL for each plan
is quoted in the implementation modules' docstrings).  The optimizer
annotates join strategies; the executor evaluates the tree bottom-up.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.relational.expr import Expr


class Plan:
    """Base class of all plan nodes."""

    def children(self) -> tuple["Plan", ...]:
        return ()


@dataclass
class Scan(Plan):
    """Read a stored table or view by name."""

    table: str


@dataclass
class Alias(Plan):
    """Prefix every output column with ``<alias>.`` (for self-joins)."""

    child: Plan
    alias: str

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)


@dataclass
class Select(Plan):
    """Filter rows by a predicate."""

    child: Plan
    predicate: Expr

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)


@dataclass
class Project(Plan):
    """Compute output columns ``[(name, expr), ...]`` per row."""

    child: Plan
    outputs: list[tuple[str, Expr]]

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)


@dataclass
class Join(Plan):
    """Inner join with an arbitrary predicate.

    ``strategy`` is filled in by the optimizer: ``"hash"`` when the
    predicate is a conjunction of plain column equalities, ``"cross"``
    otherwise (nested-loop over the full cross product — the paper's
    Section 7.2 failure mode).
    """

    left: Plan
    right: Plan
    predicate: Expr | None = None
    strategy: str = ""
    equi_keys: list[tuple[str, str]] = field(default_factory=list)
    residual: Expr | None = None
    #: Scale group of the output cardinality; ``None`` lets the executor
    #: infer it (same-group equi joins keep their group, a FIXED side is
    #: absorbed, mixed groups multiply).
    out_scale: str | None = None

    def children(self) -> tuple[Plan, ...]:
        return (self.left, self.right)


@dataclass
class GroupBy(Plan):
    """Hash aggregation.

    ``aggs`` entries are ``(output_name, kind, expr)`` with kind one of
    ``sum | count | avg | min | max``; ``expr`` is ignored for count.
    With no keys, a single global aggregate row is produced.
    """

    child: Plan
    keys: list[str]
    aggs: list[tuple[str, str, Expr | None]]
    #: Scale group of the *group count*.  ``None`` infers: when the
    #: observed group count is much smaller than the input, combining is
    #: effective and the group count is treated as FIXED; otherwise the
    #: groups scale with the input.
    out_scale: str | None = None

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)


@dataclass
class Union(Plan):
    """Bag union of same-schema inputs."""

    inputs: list[Plan]

    def children(self) -> tuple[Plan, ...]:
        return tuple(self.inputs)


@dataclass
class Distinct(Plan):
    """Duplicate elimination (a degenerate aggregation)."""

    child: Plan

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)


@dataclass
class VGOp(Plan):
    """Invoke a variable-generation (VG) function.

    SimSQL's signature feature (Section 4.2): a randomized table-valued
    function parameterized by one or more input queries.  With a
    ``group_key`` the input rows are partitioned by that column and the
    function is invoked once per group (the paper's ``FOR EACH r IN``
    construct); the group key is prepended to every output row.
    Parameter tables lacking the key are broadcast to every group.

    ``out_scale`` names the scale group of the *output cardinality*
    (e.g. one membership row per data point is data-scaled).
    """

    vg: object  # VGFunction; typed loosely to avoid an import cycle
    params: dict[str, Plan]
    group_key: str | None = None
    out_scale: str | None = None
    #: Scale group of the VG's internal FLOPs when it differs from the
    #: invocation count's (a super-vertex VG is invoked once per block
    #: but does data-proportional work inside).
    flops_scale: str | None = None

    def children(self) -> tuple[Plan, ...]:
        return tuple(self.params.values())
