"""Scalar expressions for the relational engine's plans.

Expressions are built with :func:`col` / :func:`lit` and Python operator
overloading, then *bound* to a schema to produce a fast row-callable::

    predicate = (col("clus_id") == lit(3)) & (col("prob") > lit(0.1))
    fn = predicate.bind(schema)      # tuple -> bool

The structure is inspectable, which the optimizer uses to recognize
equi-join keys — and, faithfully to the paper (Section 7.2), to *fail*
to recognize ``t1.curPos == t2.curPos + 1`` as anything better than a
cross product.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.relational.schema import Schema


class Expr:
    """Base expression node."""

    def bind(self, schema: Schema) -> Callable[[tuple], object]:
        raise NotImplementedError

    # Arithmetic -------------------------------------------------------
    def __add__(self, other):
        return BinOp("+", self, _wrap(other), lambda a, b: a + b)

    def __radd__(self, other):
        return BinOp("+", _wrap(other), self, lambda a, b: a + b)

    def __sub__(self, other):
        return BinOp("-", self, _wrap(other), lambda a, b: a - b)

    def __rsub__(self, other):
        return BinOp("-", _wrap(other), self, lambda a, b: a - b)

    def __mul__(self, other):
        return BinOp("*", self, _wrap(other), lambda a, b: a * b)

    def __rmul__(self, other):
        return BinOp("*", _wrap(other), self, lambda a, b: a * b)

    def __truediv__(self, other):
        return BinOp("/", self, _wrap(other), lambda a, b: a / b)

    def __rtruediv__(self, other):
        return BinOp("/", _wrap(other), self, lambda a, b: a / b)

    # Comparisons ------------------------------------------------------
    def __eq__(self, other):  # type: ignore[override]
        return BinOp("=", self, _wrap(other), lambda a, b: a == b)

    def __ne__(self, other):  # type: ignore[override]
        return BinOp("<>", self, _wrap(other), lambda a, b: a != b)

    def __lt__(self, other):
        return BinOp("<", self, _wrap(other), lambda a, b: a < b)

    def __le__(self, other):
        return BinOp("<=", self, _wrap(other), lambda a, b: a <= b)

    def __gt__(self, other):
        return BinOp(">", self, _wrap(other), lambda a, b: a > b)

    def __ge__(self, other):
        return BinOp(">=", self, _wrap(other), lambda a, b: a >= b)

    # Boolean ----------------------------------------------------------
    def __and__(self, other):
        return BinOp("AND", self, _wrap(other), lambda a, b: bool(a) and bool(b))

    def __or__(self, other):
        return BinOp("OR", self, _wrap(other), lambda a, b: bool(a) or bool(b))

    def __invert__(self):
        return Func("NOT", (self,), lambda a: not a)

    __hash__ = object.__hash__  # __eq__ is overloaded to build SQL, not compare


class Col(Expr):
    """A column reference, resolved the way SQL resolves names.

    Exact match first; then a qualified name (``a.x``) falls back to its
    bare suffix (``x``), and a bare name falls back to a *unique*
    qualified match (``a.x`` when no other ``*.x`` exists).
    """

    def __init__(self, name: str) -> None:
        self.name = name

    def bind(self, schema: Schema) -> Callable[[tuple], object]:
        idx = schema.resolve(self.name)
        return lambda row: row[idx]

    def __repr__(self) -> str:
        return f"col({self.name!r})"


class Lit(Expr):
    """A literal constant."""

    def __init__(self, value) -> None:
        self.value = value

    def bind(self, schema: Schema) -> Callable[[tuple], object]:
        value = self.value
        return lambda row: value

    def __repr__(self) -> str:
        return f"lit({self.value!r})"


class BinOp(Expr):
    """A binary operation."""

    def __init__(self, symbol: str, left: Expr, right: Expr, fn: Callable) -> None:
        self.symbol = symbol
        self.left = left
        self.right = right
        self.fn = fn

    def bind(self, schema: Schema) -> Callable[[tuple], object]:
        lf, rf, fn = self.left.bind(schema), self.right.bind(schema), self.fn
        return lambda row: fn(lf(row), rf(row))

    def __repr__(self) -> str:
        return f"({self.left!r} {self.symbol} {self.right!r})"


class Func(Expr):
    """An n-ary scalar function application."""

    def __init__(self, name: str, args: tuple[Expr, ...], fn: Callable) -> None:
        self.name = name
        self.args = args
        self.fn = fn

    def bind(self, schema: Schema) -> Callable[[tuple], object]:
        bound = [a.bind(schema) for a in self.args]
        fn = self.fn
        return lambda row: fn(*(b(row) for b in bound))

    def __repr__(self) -> str:
        return f"{self.name}({', '.join(map(repr, self.args))})"


def col(name: str) -> Col:
    return Col(name)


def lit(value) -> Lit:
    return Lit(value)


def sqrt(expr: Expr) -> Func:
    return Func("sqrt", (_wrap(expr),), math.sqrt)


def log(expr: Expr) -> Func:
    return Func("log", (_wrap(expr),), math.log)


def exp(expr: Expr) -> Func:
    return Func("exp", (_wrap(expr),), math.exp)


def absval(expr: Expr) -> Func:
    return Func("abs", (_wrap(expr),), abs)


def mod(expr: Expr, divisor: int) -> Func:
    return Func("mod", (_wrap(expr), _wrap(divisor)), lambda a, b: a % b)


def _wrap(value) -> Expr:
    return value if isinstance(value, Expr) else Lit(value)


def conjuncts(expr: Expr) -> list[Expr]:
    """Flatten a tree of ANDs into its leaf predicates."""
    if isinstance(expr, BinOp) and expr.symbol == "AND":
        return conjuncts(expr.left) + conjuncts(expr.right)
    return [expr]


def as_column_equality(expr: Expr) -> tuple[str, str] | None:
    """Recognize ``col_a == col_b`` — and nothing cleverer.

    Faithful to the paper's SimSQL optimizer quirk: an equality with
    arithmetic on either side (``t1.pos == t2.pos + 1``) is *not*
    recognized as a join key, forcing a cross product (Section 7.2).
    """
    if isinstance(expr, BinOp) and expr.symbol == "=":
        if isinstance(expr.left, Col) and isinstance(expr.right, Col):
            return expr.left.name, expr.right.name
    return None


def columns_referenced(expr: Expr) -> set[str]:
    """Every column name an expression reads."""
    if isinstance(expr, Col):
        return {expr.name}
    if isinstance(expr, BinOp):
        return columns_referenced(expr.left) | columns_referenced(expr.right)
    if isinstance(expr, Func):
        out: set[str] = set()
        for arg in expr.args:
            out |= columns_referenced(arg)
        return out
    return set()
