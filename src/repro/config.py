"""Cluster hardware and paper-scale workload constants.

Everything here is lifted from the paper's Section 3.4 (experimental
platform) and the per-experiment setups in Sections 5-9: Amazon EC2
m2.4xlarge machines (eight virtual cores, two disks, 68 GB of RAM),
clusters of 5 / 20 / 100 machines, and a fixed data volume per machine
for every experiment so the cluster scales with the data.
"""

from __future__ import annotations

from dataclasses import dataclass

GB = 1024**3
MB = 1024**2
KB = 1024

#: Cluster sizes used throughout the paper's evaluation.
PAPER_CLUSTER_SIZES = (5, 20, 100)


@dataclass(frozen=True)
class MachineProfile:
    """Static description of one cluster machine."""

    name: str
    cores: int
    ram_bytes: int
    disks: int
    #: Sequential disk bandwidth per disk, bytes/second.
    disk_bandwidth: float
    #: Network bandwidth per machine, bytes/second (full-duplex NIC).
    network_bandwidth: float

    @property
    def ram_gb(self) -> float:
        return self.ram_bytes / GB


#: The paper's machine: EC2 m2.4xlarge (8 vcores, 68 GB RAM, 2 disks).
#: Bandwidths are the published figures for that 2013-era instance class
#: (~100 MB/s per local disk, ~1 Gbit/s network).
EC2_M2_4XLARGE = MachineProfile(
    name="m2.4xlarge",
    cores=8,
    ram_bytes=68 * GB,
    disks=2,
    disk_bandwidth=100 * MB,
    network_bandwidth=125 * MB,
)


@dataclass(frozen=True)
class WorkloadScale:
    """Paper-scale workload parameters for one experiment family."""

    #: Data units (points, documents, ...) stored per machine.
    units_per_machine: int
    #: Human-readable name of the data unit.
    unit: str


#: GMM and Gaussian imputation: ten million data points per machine.
GMM_SCALE = WorkloadScale(units_per_machine=10_000_000, unit="points")
#: 100-dimensional GMM: one million data points per machine.
GMM_100D_SCALE = WorkloadScale(units_per_machine=1_000_000, unit="points")
#: Bayesian Lasso: 10^5 data points per machine.
LASSO_SCALE = WorkloadScale(units_per_machine=100_000, unit="points")
#: HMM and LDA: 2.5 million documents per machine.
TEXT_SCALE = WorkloadScale(units_per_machine=2_500_000, unit="documents")

@dataclass(frozen=True)
class RetryPolicy:
    """Bounded task re-execution, Hadoop style (paper Section 10).

    SimSQL and Giraph inherit Hadoop's recovery discipline: a lost or
    failed task is re-executed up to ``max_attempts`` times total (the
    original run counts as the first attempt, mirroring
    ``mapred.map.max.attempts``), each retry delayed by an exponential
    backoff, and a dead machine is only *noticed* after the heartbeat
    timeout.  The fault simulator (:mod:`repro.cluster.faults`) charges
    these delays; a phase that accumulates failures past the attempt
    budget fails the whole run.
    """

    #: Total attempts allowed per task, original execution included.
    max_attempts: int = 4
    #: Delay before the first re-execution, seconds.
    backoff_seconds: float = 3.0
    #: Multiplier applied to the delay for each further re-execution.
    backoff_factor: float = 2.0
    #: Heartbeat timeout before a lost machine's tasks are declared dead.
    timeout_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be at least 1, got {self.max_attempts}")
        if self.backoff_seconds < 0 or self.timeout_seconds < 0:
            raise ValueError("backoff_seconds and timeout_seconds must be non-negative")
        if self.backoff_factor < 1:
            raise ValueError(f"backoff_factor must be at least 1, got {self.backoff_factor}")

    def backoff_before(self, retry: int) -> float:
        """Delay before the ``retry``-th re-execution (1-based)."""
        return self.backoff_seconds * self.backoff_factor ** max(0, retry - 1)


#: The retry discipline every fault simulation uses unless overridden.
DEFAULT_RETRY_POLICY = RetryPolicy()

#: Seconds of notice a spot reclaim gives before the machine vanishes
#: (EC2's two-minute interruption warning).  A platform that can migrate
#: the machine's resident state off-box within this window drains
#: gracefully; otherwise the reclaim lands as a plain machine crash.
SPOT_WARNING_SECONDS = 120.0

#: Default machine-count change of an elastic resize event (the common
#: autoscaler scale-down: one machine leaves the fleet).
DEFAULT_RESIZE_DELTA = -1

#: On-demand hourly price of the paper's m2.4xlarge instance (2013 USD)
#: and the spot-market price the fleet advisor assumes for the same
#: hardware.  Spot capacity is cheap but preemptible-with-notice.
ONDEMAND_HOURLY_USD = 1.64
SPOT_HOURLY_USD = 0.41

#: HDFS-style replication factor charged when a checkpoint is written
#: (one local copy plus one remote copy is the simulated default).
CHECKPOINT_REPLICATION = 2.0

#: Corpus statistics shared by the HMM and LDA experiments (Section 7.5).
TEXT_VOCABULARY = 10_000
TEXT_MEAN_DOC_LENGTH = 210

#: Model sizes from the paper.
GMM_CLUSTERS = 10
HMM_STATES = 20
LDA_TOPICS = 100
LASSO_DIMENSIONS = 1000
