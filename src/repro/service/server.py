"""Stdlib HTTP server over the job scheduler: benchmark-as-a-service.

No new dependencies: ``http.server.ThreadingHTTPServer`` accepts
experiment specs as JSON and serves results, statuses, and store
statistics.  The endpoints:

==========================  ===========================================
``POST /jobs``              submit a spec (JSON body); returns the job
                            — instantly DONE and ``cached`` when the
                            ResultStore already holds the result
``GET /jobs``               every job's status
``GET /jobs/<id>``          one job; includes ``result`` when DONE
``GET /results/<key>``      a stored result by spec content address
``GET /health``             liveness + job counts + store hit/miss stats
==========================  ===========================================

Errors are JSON too: 400 for malformed or invalid specs (the validation
message names the unknown cell or field), 404 for unknown jobs/keys/
paths.  The handler threads only move job records and payloads around;
execution happens on the scheduler's worker threads through the same
``execute_spec`` chokepoint the batch drivers use.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.service.jobs import JobScheduler, JobState
from repro.service.spec import ExperimentSpec, SpecError
from repro.service.store import ResultStore


class ExperimentServer(ThreadingHTTPServer):
    """HTTP server bound to one :class:`JobScheduler`."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int],
                 scheduler: JobScheduler) -> None:
        super().__init__(address, ServiceHandler)
        self.scheduler = scheduler

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class ServiceHandler(BaseHTTPRequestHandler):
    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    # The default handler logs every request to stderr; the service is
    # often run under a test harness, so stay quiet.
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    @property
    def scheduler(self) -> JobScheduler:
        return self.server.scheduler

    # -- plumbing -------------------------------------------------------

    def _send(self, code: int, payload: dict) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, code: int, message: str) -> None:
        self._send(code, {"error": message})

    def _read_json(self) -> dict | None:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        try:
            return json.loads(raw.decode() or "null")
        except (ValueError, UnicodeDecodeError) as exc:
            self._error(400, f"request body is not JSON: {exc}")
            return None

    def _job_payload(self, job) -> dict:
        payload = job.to_json()
        if job.state is JobState.DONE:
            result = self.scheduler.result(job)
            if result is not None:
                payload["result"] = result
        return payload

    # -- routes ---------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        path = self.path.rstrip("/") or "/"
        if path == "/health":
            self._send(200, {
                "ok": True,
                "jobs": self.scheduler.counts(),
                "store": self.scheduler.store.stats(),
            })
        elif path == "/jobs":
            self._send(200, {
                "jobs": [job.to_json() for job in self.scheduler.jobs()],
            })
        elif path.startswith("/jobs/"):
            job = self.scheduler.job(path[len("/jobs/"):])
            if job is None:
                self._error(404, f"unknown job {path[len('/jobs/'):]!r}")
                return
            self._send(200, self._job_payload(job))
        elif path.startswith("/results/"):
            key = path[len("/results/"):]
            result = self.scheduler.store.get(key)
            if result is None:
                self._error(404, f"no stored result for key {key!r}")
                return
            self._send(200, {"key": key, "result": result})
        else:
            self._error(404, f"unknown path {self.path!r}; try /health, "
                        f"/jobs, /jobs/<id> or /results/<key>")

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        path = self.path.rstrip("/")
        if path != "/jobs":
            self._error(404, f"unknown path {self.path!r}; POST specs "
                        f"to /jobs")
            return
        payload = self._read_json()
        if payload is None:
            return
        try:
            spec = ExperimentSpec.from_json(payload)
            job = self.scheduler.submit(spec)
        except (SpecError, KeyError, TypeError) as exc:
            message = exc.args[0] if exc.args else str(exc)
            self._error(400, f"invalid spec: {message}")
            return
        self._send(202 if not job.finished else 200, self._job_payload(job))


def make_server(host: str = "127.0.0.1", port: int = 0,
                store: ResultStore | None = None,
                scheduler: JobScheduler | None = None,
                workers: int = 1) -> ExperimentServer:
    """Build (but do not start) a server; ``port=0`` picks a free port."""
    if scheduler is None:
        scheduler = JobScheduler(store=store, workers=workers)
    return ExperimentServer((host, port), scheduler)


def start_server(host: str = "127.0.0.1", port: int = 0,
                 store: ResultStore | None = None,
                 scheduler: JobScheduler | None = None,
                 workers: int = 1) -> ExperimentServer:
    """Start a server (scheduler workers + an HTTP thread) and return it.

    The serving thread is a daemon; call :func:`stop_server` for an
    orderly shutdown.
    """
    server = make_server(host, port, store=store, scheduler=scheduler,
                         workers=workers)
    server.scheduler.start()
    thread = threading.Thread(target=server.serve_forever,
                              name="repro-service-http", daemon=True)
    server._thread = thread
    thread.start()
    return server


def stop_server(server: ExperimentServer) -> None:
    server.shutdown()
    server.server_close()
    server.scheduler.stop()
    thread = getattr(server, "_thread", None)
    if thread is not None:
        thread.join(timeout=5)


__all__ = ["ExperimentServer", "ServiceHandler", "make_server",
           "start_server", "stop_server"]
