"""Declarative experiment specs: the repo's single currency for "an experiment".

Every question the paper asks has the same shape — run (platform x
model x variant x cluster size x faults x seeds) and compare — yet the
batch drivers historically wired the registry, pool and cache by hand
for each figure.  :class:`ExperimentSpec` extracts that shape into one
frozen, JSON-round-trippable value:

* **cell** specs describe one figure cell: a registry key, workload
  references, an implementation seed, a cluster size, iteration count
  and scale map.  Executing one yields a
  :class:`~repro.bench.runner.CellResult`.
* **sweep** specs add a :class:`SweepAxes` block — machine counts,
  crash rates, hostile-cluster regimes, a schedule seed — and executing
  one yields a fault-sweep case payload (one engine run per cluster
  size, the whole scenario grid replayed over each trace).

Specs are *validated* against :mod:`repro.impls.registry` (unknown
cells fail at submission, not mid-run) and *canonically hashed* with
:func:`repro.hashing.stable_hash` / :func:`~repro.hashing.stable_digest`
the same way :class:`~repro.bench.pool.WorkloadCache` keys workloads:
two specs that describe the same experiment — regardless of JSON key
order, camelCase aliasing, or int-vs-float spelling of numeric fields —
share one :attr:`ExperimentSpec.key`, which is what lets the service's
:class:`~repro.service.store.ResultStore` serve repeated submissions
without recomputation.

This module is pure description: no wall-clock, no execution.  The one
``execute_spec`` chokepoint lives in :mod:`repro.service.execution`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, fields, replace
from typing import Mapping

from repro.bench.pool import GENERATORS, CellTask, WorkloadRef, WorkloadSpec
from repro.hashing import stable_digest, stable_hash
from repro.impls.registry import cell as registry_cell

#: Bump when the canonical encoding changes shape; part of every hash.
SPEC_VERSION = 1

#: JSON-literal types a spec field (arg, param, kwarg) may hold.  Numpy
#: arrays and other rich objects must come in as workload references —
#: that is what makes a spec a *description* instead of a payload.
_LITERALS = (bool, int, float, str, type(None))

_CAMEL = re.compile(r"([a-z0-9])([A-Z])")


class SpecError(ValueError):
    """A spec that cannot describe a runnable experiment."""


def _snake(name: str) -> str:
    """``camelCase`` -> ``camel_case`` (snake_case passes through)."""
    return _CAMEL.sub(r"\1_\2", name).lower()


def _as_int(value, where: str) -> int:
    """Coerce an integral number (``3``, ``3.0``) to int; reject the rest."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise SpecError(f"{where} must be an integer, got {value!r}")
    if isinstance(value, float):
        if not value.is_integer():
            raise SpecError(f"{where} must be integral, got {value!r}")
        return int(value)
    return value


def _sorted_items(mapping, where: str, numeric: bool = False) -> tuple:
    """A mapping (or items tuple) as a canonical sorted items tuple."""
    items = mapping.items() if isinstance(mapping, Mapping) else tuple(mapping)
    out = []
    for key, value in sorted(items):
        if numeric:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise SpecError(f"{where}[{key!r}] must be numeric, got {value!r}")
            value = float(value)
        elif not isinstance(value, _LITERALS):
            raise SpecError(
                f"{where}[{key!r}] must be a JSON literal, got "
                f"{type(value).__name__}")
        out.append((str(key), value))
    return tuple(out)


# ----------------------------------------------------------------------
# Sweep axes
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SweepAxes:
    """The fault-sweep axes of a ``sweep``-kind spec.

    One engine run per entry of ``machine_counts``; each trace is then
    replayed against every crash rate, both preemption warning windows,
    both resize deltas, and a heterogeneous mixed-generations fleet, in
    a single vectorized :func:`repro.cluster.simulate_grid` pass.
    """

    units_per_machine: int
    laptop_units: int
    machine_counts: tuple[int, ...]
    crash_rates: tuple[float, ...]
    sweep_seed: int
    checkpoint_interval: int
    preemption_rate: float
    preemption_warnings: tuple[float, ...]
    resize_rate: float
    resize_deltas: tuple[int, ...]
    extra_scales: tuple[tuple[str, float], ...] = ()
    sv_block: int = 0

    def canonical(self) -> tuple:
        return ("sweep-axes", self.units_per_machine, self.laptop_units,
                tuple(self.machine_counts), tuple(self.crash_rates),
                self.sweep_seed, self.checkpoint_interval,
                self.preemption_rate, tuple(self.preemption_warnings),
                self.resize_rate, tuple(self.resize_deltas),
                tuple(self.extra_scales), self.sv_block)

    def to_json(self) -> dict:
        return {
            "units_per_machine": self.units_per_machine,
            "laptop_units": self.laptop_units,
            "machine_counts": list(self.machine_counts),
            "crash_rates": list(self.crash_rates),
            "sweep_seed": self.sweep_seed,
            "checkpoint_interval": self.checkpoint_interval,
            "preemption_rate": self.preemption_rate,
            "preemption_warnings": list(self.preemption_warnings),
            "resize_rate": self.resize_rate,
            "resize_deltas": list(self.resize_deltas),
            "extra_scales": dict(self.extra_scales),
            "sv_block": self.sv_block,
        }

    @classmethod
    def from_json(cls, payload: Mapping) -> "SweepAxes":
        data = {_snake(key): value for key, value in payload.items()}
        unknown = set(data) - {f.name for f in fields(cls)}
        if unknown:
            raise SpecError(f"unknown sweep-axes fields {sorted(unknown)}")
        try:
            return cls(
                units_per_machine=_as_int(data["units_per_machine"],
                                          "axes.units_per_machine"),
                laptop_units=_as_int(data["laptop_units"], "axes.laptop_units"),
                machine_counts=tuple(
                    _as_int(m, "axes.machine_counts")
                    for m in data["machine_counts"]),
                crash_rates=tuple(float(r) for r in data["crash_rates"]),
                sweep_seed=_as_int(data["sweep_seed"], "axes.sweep_seed"),
                checkpoint_interval=_as_int(data["checkpoint_interval"],
                                            "axes.checkpoint_interval"),
                preemption_rate=float(data["preemption_rate"]),
                preemption_warnings=tuple(
                    float(w) for w in data["preemption_warnings"]),
                resize_rate=float(data["resize_rate"]),
                resize_deltas=tuple(
                    _as_int(d, "axes.resize_deltas")
                    for d in data["resize_deltas"]),
                extra_scales=_sorted_items(data.get("extra_scales", ()),
                                           "axes.extra_scales", numeric=True),
                sv_block=_as_int(data.get("sv_block", 0), "axes.sv_block"),
            )
        except KeyError as exc:
            raise SpecError(f"sweep axes missing field {exc.args[0]!r}") from None

    def validate(self) -> None:
        if not self.machine_counts:
            raise SpecError("sweep axes need at least one machine count")
        if any(m < 1 for m in self.machine_counts):
            raise SpecError(f"machine counts must be >= 1, got "
                            f"{list(self.machine_counts)}")
        if not self.crash_rates:
            raise SpecError("sweep axes need at least one crash rate")
        if self.laptop_units < 1:
            raise SpecError(f"laptop_units must be >= 1, got {self.laptop_units}")


# ----------------------------------------------------------------------
# The spec
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ExperimentSpec:
    """A frozen, JSON-round-trippable description of one runnable cell."""

    platform: str
    model: str
    variant: str
    #: Constructor data args: JSON literals or :class:`WorkloadRef`s.
    args: tuple = ()
    seed: int = 0
    iterations: int = 1
    #: Cluster size (``cell`` kind; sweeps carry theirs in ``axes``).
    machines: int = 0
    #: Scale-factor map as sorted items (``cell`` kind).
    scales: tuple[tuple[str, float], ...] = ()
    label: str = ""
    #: The paper's published value for this cell, for side-by-side tables.
    paper: str = ""
    kwargs: tuple[tuple[str, object], ...] = ()
    axes: SweepAxes | None = field(default=None)

    # -- construction ---------------------------------------------------

    @classmethod
    def make_cell(cls, platform: str, model: str, variant: str, *, args=(),
                  seed: int, machines: int, iterations: int,
                  scales=(), label: str = "", paper: str = "",
                  **kwargs) -> "ExperimentSpec":
        spec = cls(platform=platform, model=model, variant=variant,
                   args=tuple(args), seed=_as_int(seed, "seed"),
                   iterations=_as_int(iterations, "iterations"),
                   machines=_as_int(machines, "machines"),
                   scales=_sorted_items(scales, "scales", numeric=True),
                   label=label, paper=paper,
                   kwargs=_sorted_items(kwargs, "kwargs"))
        spec.validate()
        return spec

    @classmethod
    def make_sweep(cls, platform: str, model: str, variant: str, *, args=(),
                   seed: int, iterations: int, axes: SweepAxes,
                   label: str = "", **kwargs) -> "ExperimentSpec":
        spec = cls(platform=platform, model=model, variant=variant,
                   args=tuple(args), seed=_as_int(seed, "seed"),
                   iterations=_as_int(iterations, "iterations"),
                   label=label, kwargs=_sorted_items(kwargs, "kwargs"),
                   axes=axes)
        spec.validate()
        return spec

    # -- identity -------------------------------------------------------

    @property
    def kind(self) -> str:
        return "sweep" if self.axes is not None else "cell"

    @property
    def name(self) -> str:
        """Display name (the fault-sweep payload keys cases by it)."""
        return self.label or "/".join((self.platform, self.model, self.variant))

    def describe(self) -> str:
        if self.kind == "sweep":
            return (f"{self.name!r} sweep ({self.platform}/{self.model}/"
                    f"{self.variant} @ {list(self.axes.machine_counts)} "
                    f"machines, seed {self.seed})")
        return (f"{self.name!r} ({self.platform}/{self.model}/{self.variant} "
                f"@ {self.machines} machines, seed {self.seed})")

    def canonical(self) -> tuple:
        """The spec as a pure tuple tree: the hashing currency.

        Every field participates — two specs differing only in a label
        or a paper annotation produce different result payloads, so they
        must content-address differently.
        """
        return ("experiment-spec", SPEC_VERSION, self.kind,
                self.platform, self.model, self.variant,
                tuple(_canonical_arg(arg) for arg in self.args),
                self.seed, self.iterations, self.machines,
                tuple(self.scales), self.label, self.paper,
                tuple(self.kwargs),
                self.axes.canonical() if self.axes is not None else None)

    @property
    def spec_hash(self) -> int:
        """:func:`repro.hashing.stable_hash` of the canonical form."""
        return stable_hash(self.canonical())

    @property
    def key(self) -> str:
        """Stable content address, the :class:`~repro.service.store.ResultStore`
        key: readable cell prefix + digest of the canonical form."""
        return (f"{self.platform}.{self.model}.{self.variant}.{self.kind}"
                f"-{stable_digest(self.canonical())}")

    # -- validation -----------------------------------------------------

    def validate(self) -> "ExperimentSpec":
        """Check the spec against the registry and generator tables.

        Raises :class:`SpecError` (or the registry's own descriptive
        ``KeyError`` for unknown cells) — submission-time, not mid-run.
        """
        registry_cell(self.platform, self.model, self.variant)
        for index, arg in enumerate(self.args):
            if isinstance(arg, WorkloadRef):
                if arg.spec.generator not in GENERATORS:
                    known = ", ".join(sorted(GENERATORS))
                    raise SpecError(
                        f"args[{index}] names unknown workload generator "
                        f"{arg.spec.generator!r}; known generators: {known}")
            elif not isinstance(arg, _LITERALS):
                raise SpecError(
                    f"args[{index}] must be a JSON literal or a workload "
                    f"reference, got {type(arg).__name__}; pass data through "
                    f"a WorkloadSpec so the spec stays a description")
        if self.iterations < 1:
            raise SpecError(f"iterations must be >= 1, got {self.iterations}")
        if self.kind == "cell":
            if self.machines < 1:
                raise SpecError(
                    f"cell specs need machines >= 1, got {self.machines}")
        else:
            if self.machines:
                raise SpecError("sweep specs carry machine counts in axes, "
                                "not a machines field")
            self.axes.validate()
        return self

    # -- JSON -----------------------------------------------------------

    def to_json(self) -> dict:
        payload = {
            "kind": self.kind,
            "platform": self.platform,
            "model": self.model,
            "variant": self.variant,
            "args": [_encode_arg(arg) for arg in self.args],
            "seed": self.seed,
            "iterations": self.iterations,
            "label": self.label,
            "kwargs": dict(self.kwargs),
        }
        if self.kind == "cell":
            payload["machines"] = self.machines
            payload["scales"] = dict(self.scales)
            payload["paper"] = self.paper
        else:
            payload["axes"] = self.axes.to_json()
        return payload

    @classmethod
    def from_json(cls, payload: Mapping) -> "ExperimentSpec":
        """Decode (and validate) a spec from its JSON form.

        Key normalization makes the decode canonical: camelCase aliases
        (``sweepSeed``, ``machineCounts``) are folded to snake_case and
        integral floats to ints before hashing, so every JSON spelling
        of the same experiment lands on the same :attr:`key`.
        """
        if not isinstance(payload, Mapping):
            raise SpecError(f"spec payload must be an object, got "
                            f"{type(payload).__name__}")
        data = {_snake(key): value for key, value in payload.items()}
        known = {f.name for f in fields(cls)} | {"kind"}
        unknown = set(data) - known
        if unknown:
            raise SpecError(f"unknown spec fields {sorted(unknown)}")
        kind = data.pop("kind", "sweep" if "axes" in data else "cell")
        if kind not in ("cell", "sweep"):
            raise SpecError(f"unknown spec kind {kind!r}")
        try:
            common = {
                "platform": str(data["platform"]),
                "model": str(data["model"]),
                "variant": str(data["variant"]),
                "args": tuple(_decode_arg(arg) for arg in data.get("args", ())),
                "seed": data["seed"],
                "iterations": data.get("iterations", 1),
                "label": str(data.get("label", "")),
            }
        except KeyError as exc:
            raise SpecError(f"spec missing field {exc.args[0]!r}") from None
        kwargs = data.get("kwargs", ())
        kwargs = dict(kwargs) if isinstance(kwargs, Mapping) else dict(kwargs)
        if kind == "cell":
            if "axes" in data:
                raise SpecError("cell specs do not take sweep axes")
            try:
                machines = data["machines"]
            except KeyError:
                raise SpecError("cell spec missing field 'machines'") from None
            return cls.make_cell(
                common.pop("platform"), common.pop("model"),
                common.pop("variant"), machines=machines,
                scales=data.get("scales", ()), paper=str(data.get("paper", "")),
                **common, **kwargs)
        if "axes" not in data:
            raise SpecError("sweep spec missing field 'axes'")
        return cls.make_sweep(
            common.pop("platform"), common.pop("model"), common.pop("variant"),
            axes=SweepAxes.from_json(data["axes"]), **common, **kwargs)

    # -- execution handoff ---------------------------------------------

    def to_task(self) -> CellTask:
        """The pool's execution record for a ``cell`` spec."""
        if self.kind != "cell":
            raise SpecError(f"{self.describe()} is a sweep, not a single cell")
        return CellTask(label=self.label, platform=self.platform,
                        model=self.model, variant=self.variant,
                        args=self.args, seed=self.seed, machines=self.machines,
                        iterations=self.iterations, scales=self.scales,
                        paper=self.paper, kwargs=self.kwargs)

    def with_axes(self, **changes) -> "ExperimentSpec":
        """A sweep spec with some axes replaced (e.g. a quick subset)."""
        if self.axes is None:
            raise SpecError(f"{self.describe()} has no sweep axes to replace")
        return replace(self, axes=replace(self.axes, **changes))

    def scale_dict(self) -> dict[str, float]:
        return dict(self.scales)


# ----------------------------------------------------------------------
# Arg encoding
# ----------------------------------------------------------------------

def workload_ref(generator: str, seed: int, attr: str = "", **params) -> WorkloadRef:
    """Shorthand for a content-addressed workload reference arg."""
    return WorkloadRef(WorkloadSpec.make(generator, seed, **params), attr)


def _canonical_arg(arg) -> tuple | object:
    if isinstance(arg, WorkloadRef):
        return ("workload", arg.spec.generator, arg.spec.seed,
                tuple(arg.spec.params), arg.attr)
    return arg


def _encode_arg(arg):
    if isinstance(arg, WorkloadRef):
        return {
            "workload": {
                "generator": arg.spec.generator,
                "seed": arg.spec.seed,
                "params": dict(arg.spec.params),
            },
            "attr": arg.attr,
        }
    return arg


def _decode_arg(arg):
    if isinstance(arg, Mapping):
        data = {_snake(key): value for key, value in arg.items()}
        if "workload" not in data:
            raise SpecError(f"arg object must carry a 'workload' key, "
                            f"got {sorted(data)}")
        workload = {_snake(key): value for key, value in data["workload"].items()}
        try:
            generator = workload["generator"]
            seed = _as_int(workload["seed"], "workload seed")
        except KeyError as exc:
            raise SpecError(
                f"workload reference missing field {exc.args[0]!r}") from None
        params = {str(k): v for k, v in workload.get("params", {}).items()}
        for key, value in params.items():
            if not isinstance(value, _LITERALS):
                raise SpecError(f"workload param {key!r} must be a JSON "
                                f"literal, got {type(value).__name__}")
            if isinstance(value, float) and value.is_integer():
                params[key] = int(value)
        return WorkloadRef(WorkloadSpec.make(generator, seed, **params),
                           str(data.get("attr", "")))
    if isinstance(arg, _LITERALS):
        if isinstance(arg, float) and not isinstance(arg, bool) and arg.is_integer():
            return int(arg)
        return arg
    raise SpecError(f"spec args must be JSON literals or workload objects, "
                    f"got {type(arg).__name__}")


__all__ = [
    "SPEC_VERSION",
    "ExperimentSpec",
    "SpecError",
    "SweepAxes",
    "workload_ref",
]
