"""Thin stdlib client for the experiment service.

``urllib.request`` only — the client mirrors the server's endpoints
one-for-one and raises :class:`ServiceError` with the server's own JSON
error message on 4xx/5xx.  Polling waits are attempt-count loops with a
fixed sleep between tries: the service layer keeps wall-clock reads
confined to the job-timing module.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

from repro.service.spec import ExperimentSpec

#: Seconds between poll attempts in :meth:`ServiceClient.wait`.
POLL_SLEEP = 0.05


class ServiceError(RuntimeError):
    """An HTTP error from the service, with its JSON message and code."""

    def __init__(self, code: int, message: str) -> None:
        super().__init__(f"HTTP {code}: {message}")
        self.code = code
        self.message = message


class ServiceClient:
    """Talk to one running :mod:`repro.service.server`."""

    def __init__(self, url: str) -> None:
        self.url = url.rstrip("/")

    def _request(self, path: str, body: dict | None = None) -> dict:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode()
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(self.url + path, data=data,
                                         headers=headers)
        try:
            with urllib.request.urlopen(request) as response:
                return json.loads(response.read().decode())
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read().decode()).get("error", "")
            except ValueError:
                message = exc.reason
            raise ServiceError(exc.code, message) from None

    # -- endpoints ------------------------------------------------------

    def health(self) -> dict:
        return self._request("/health")

    def submit(self, spec: ExperimentSpec | dict) -> dict:
        """Submit a spec (or its JSON form); returns the job payload."""
        body = spec.to_json() if isinstance(spec, ExperimentSpec) else spec
        return self._request("/jobs", body=body)

    def job(self, job_id: str) -> dict:
        return self._request(f"/jobs/{job_id}")

    def jobs(self) -> list[dict]:
        return self._request("/jobs")["jobs"]

    def result(self, key: str) -> dict:
        return self._request(f"/results/{key}")["result"]

    # -- conveniences ---------------------------------------------------

    def wait(self, job_id: str, attempts: int = 1200) -> dict:
        """Poll a job until it finishes; returns the final job payload."""
        for attempt in range(attempts):
            job = self.job(job_id)
            if job["state"] in ("done", "failed"):
                return job
            if attempt + 1 < attempts:
                time.sleep(POLL_SLEEP)
        raise TimeoutError(
            f"job {job_id} still {job['state']!r} after {attempts} polls")

    def run(self, spec: ExperimentSpec | dict, attempts: int = 1200) -> dict:
        """Submit and wait; returns the DONE job's result payload.

        Raises :class:`ServiceError` on a FAILED job, carrying the
        worker traceback the server preserved.
        """
        job = self.submit(spec)
        if job["state"] not in ("done", "failed"):
            job = self.wait(job["id"], attempts=attempts)
        if job["state"] == "failed":
            raise ServiceError(500, job.get("error", "job failed"))
        result = job.get("result")
        if result is None:
            result = self.result(job["key"])
        return result


__all__ = ["POLL_SLEEP", "ServiceClient", "ServiceError"]
