"""Job-state machine and scheduler: queued -> running -> done/failed.

The serving layer's unit of work is a *job*: one submitted
:class:`~repro.service.spec.ExperimentSpec` moving through

    QUEUED ----> RUNNING ----> DONE
                     \\-------> FAILED   (worker traceback preserved)

with two shortcuts that keep repeated traffic at memory speed:

* a submission whose spec is already in the
  :class:`~repro.service.store.ResultStore` completes instantly as a
  DONE job marked ``cached`` — zero recomputation;
* a submission whose spec is already queued or running coalesces onto
  the in-flight job instead of queueing a duplicate.

This is the service's *job-timing module*: the one place under
``repro/service/`` allowed to read the wall clock (submission, start
and finish stamps are operational metadata — simulated results remain a
pure function of the spec; the linter's strict service profile enforces
the boundary).
"""

from __future__ import annotations

import enum
import itertools
import queue
import threading
import time
import traceback
from dataclasses import dataclass, field

from repro.service.execution import execute_payload
from repro.service.spec import ExperimentSpec
from repro.service.store import ResultStore


class JobState(enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


#: The legal transitions; anything else is a scheduler bug.
TRANSITIONS = {
    JobState.QUEUED: (JobState.RUNNING, JobState.DONE),
    JobState.RUNNING: (JobState.DONE, JobState.FAILED),
    JobState.DONE: (),
    JobState.FAILED: (),
}


@dataclass
class Job:
    """One submitted spec and its lifecycle."""

    id: str
    spec: ExperimentSpec
    state: JobState = JobState.QUEUED
    #: True when the result came straight from the store (no execution).
    cached: bool = False
    #: Worker traceback, preserved verbatim on failure.
    error: str = ""
    submitted_at: float = 0.0
    started_at: float = 0.0
    finished_at: float = 0.0
    #: How many submissions coalesced onto this job.
    submissions: int = 1
    _event: threading.Event = field(default_factory=threading.Event, repr=False)

    @property
    def key(self) -> str:
        return self.spec.key

    @property
    def finished(self) -> bool:
        return self.state in (JobState.DONE, JobState.FAILED)

    def advance(self, state: JobState) -> None:
        if state not in TRANSITIONS[self.state]:
            raise RuntimeError(
                f"job {self.id}: illegal transition "
                f"{self.state.value} -> {state.value}")
        self.state = state
        if self.finished:
            self._event.set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job finishes; True unless the wait timed out."""
        return self._event.wait(timeout)

    def to_json(self) -> dict:
        payload = {
            "id": self.id,
            "key": self.key,
            "state": self.state.value,
            "cached": self.cached,
            "spec": self.spec.to_json(),
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "submissions": self.submissions,
        }
        if self.error:
            payload["error"] = self.error
        return payload


class JobScheduler:
    """Thread-backed queue executing specs through ``execute_spec``.

    ``executor`` is injectable (tests count real executions with it);
    the default is :func:`repro.service.execution.execute_payload`, the
    same chokepoint every batch driver uses.
    """

    def __init__(self, store: ResultStore | None = None, executor=None,
                 workers: int = 1) -> None:
        self.store = store if store is not None else ResultStore()
        self._executor = executor if executor is not None else execute_payload
        self._workers_wanted = max(1, int(workers))
        self._jobs: dict[str, Job] = {}
        self._active: dict[str, str] = {}  # spec key -> in-flight job id
        self._queue: queue.Queue = queue.Queue()
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._threads: list[threading.Thread] = []
        self._stopping = False
        #: Specs actually executed (cache misses), for observability.
        self.executions = 0

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "JobScheduler":
        with self._lock:
            if self._threads:
                return self
            self._stopping = False
            for index in range(self._workers_wanted):
                thread = threading.Thread(
                    target=self._worker_loop,
                    name=f"repro-service-worker-{index}", daemon=True)
                self._threads.append(thread)
                thread.start()
        return self

    def stop(self) -> None:
        with self._lock:
            threads, self._threads = self._threads, []
            self._stopping = True
        for _ in threads:
            self._queue.put(None)
        for thread in threads:
            thread.join(timeout=5)

    # -- submission -----------------------------------------------------

    def submit(self, spec: ExperimentSpec) -> Job:
        """Submit one spec; returns its job.

        Validation happens here (bad specs never enqueue), then the
        store is consulted: a hit produces an immediately-DONE cached
        job, an in-flight duplicate coalesces, and only a genuine miss
        queues work.
        """
        spec.validate()
        with self._lock:
            active = self._active.get(spec.key)
            if active is not None:
                job = self._jobs[active]
                job.submissions += 1
                return job
            job = Job(id=f"job-{next(self._ids)}", spec=spec,
                      submitted_at=time.time())
            self._jobs[job.id] = job
            if self.store.get(spec) is not None:
                job.cached = True
                job.finished_at = time.time()
                job.advance(JobState.DONE)
                return job
            self._active[spec.key] = job.id
            self._queue.put(job.id)
        return job

    def job(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        with self._lock:
            return list(self._jobs.values())

    def result(self, job: Job) -> dict | None:
        """The stored payload for a finished job (None when FAILED)."""
        return self.store.get(job.spec)

    def counts(self) -> dict[str, int]:
        with self._lock:
            out = {state.value: 0 for state in JobState}
            for job in self._jobs.values():
                out[job.state.value] += 1
            return out

    def wait(self, job_id: str, timeout: float | None = None) -> Job:
        job = self.job(job_id)
        if job is None:
            raise KeyError(f"unknown job {job_id!r}")
        if not job.wait(timeout):
            raise TimeoutError(
                f"job {job_id} still {job.state.value} after {timeout}s")
        return job

    # -- execution ------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:
                return
            job = self.job(job_id)
            if job is None or job.finished:
                continue
            self._run(job)

    def _run(self, job: Job) -> None:
        job.started_at = time.time()
        job.advance(JobState.RUNNING)
        try:
            payload = self._executor(job.spec)
            self.store.put(job.spec, payload)
        except Exception as exc:
            job.error = (f"{type(exc).__name__}: {exc}\n"
                         f"--- worker traceback ---\n{traceback.format_exc()}")
            job.finished_at = time.time()
            with self._lock:
                self._active.pop(job.spec.key, None)
            job.advance(JobState.FAILED)
            return
        with self._lock:
            self.executions += 1
            self._active.pop(job.spec.key, None)
        job.finished_at = time.time()
        job.advance(JobState.DONE)

    def run_pending(self) -> int:
        """Drain the queue synchronously (no worker threads needed).

        Lets tests and the CLI's one-shot mode execute deterministically
        in-process; returns the number of jobs run.
        """
        ran = 0
        while True:
            try:
                job_id = self._queue.get_nowait()
            except queue.Empty:
                return ran
            if job_id is None:
                continue
            job = self.job(job_id)
            if job is None or job.finished:
                continue
            self._run(job)
            ran += 1


__all__ = ["Job", "JobScheduler", "JobState", "TRANSITIONS"]
