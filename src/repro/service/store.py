"""Content-addressed result store: identical specs never recompute.

Results are keyed by :attr:`ExperimentSpec.key` — the stable digest of
the spec's canonical form — exactly the way
:class:`~repro.bench.pool.WorkloadCache` keys workloads.  A lookup hits
the in-process memo first (memory speed), then the JSON directory (disk
speed), and only a genuine miss costs an engine run.  Writes are atomic
(tmp + rename) and content-addressed, so concurrent writers of the same
spec are benign: both produce identical bytes.

Entries persist as human-readable JSON (``{key, spec, result}``), so a
store directory doubles as an audit trail of every experiment the
service ever ran.  A corrupted or truncated entry is treated as a miss
(with a warning) and rewritten on the next put — never a crash.

The store is shared by the scheduler's worker threads and the HTTP
handlers, so the in-memory memo and the hit/miss counters live behind a
lock (C001); disk I/O stays outside it — atomic rename makes concurrent
writers of the same content-addressed entry benign.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import warnings
from pathlib import Path

from repro.service.spec import ExperimentSpec

#: Environment variable naming the default on-disk store directory.
STORE_ENV = "REPRO_SERVICE_STORE"


class ResultStore:
    """Generate-once storage for executed experiment specs."""

    def __init__(self, directory: str | Path | None = None) -> None:
        self._lock = threading.Lock()
        self._memory: dict[str, dict] = {}
        self._directory = Path(directory) if directory is not None else None
        if self._directory is not None:
            self._directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    @property
    def directory(self) -> Path | None:
        return self._directory

    def _path(self, key: str) -> Path | None:
        if self._directory is None:
            return None
        return self._directory / f"{key}.json"

    @staticmethod
    def _key(spec: ExperimentSpec | str) -> str:
        return spec if isinstance(spec, str) else spec.key

    def get(self, spec: ExperimentSpec | str) -> dict | None:
        """The stored result payload for ``spec``, or None on a miss."""
        key = self._key(spec)
        with self._lock:
            cached = self._memory.get(key)
            if cached is not None:
                self.hits += 1
                return cached
        path = self._path(key)
        if path is not None and path.exists():
            entry = self._load(path)
            if entry is not None:
                payload = entry["result"]
                with self._lock:
                    self._memory[key] = payload
                    self.hits += 1
                return payload
        with self._lock:
            self.misses += 1
        return None

    def __contains__(self, spec: ExperimentSpec | str) -> bool:
        key = self._key(spec)
        with self._lock:
            if key in self._memory:
                return True
        path = self._path(key)
        return path is not None and path.exists() and self._load(path) is not None

    def put(self, spec: ExperimentSpec, payload: dict) -> str:
        """Store one result; returns the content-address key."""
        key = spec.key
        with self._lock:
            self._memory[key] = payload
        path = self._path(key)
        if path is not None:
            entry = {"key": key, "spec": spec.to_json(), "result": payload}
            self._write(path, entry)
        return key

    def _load(self, path: Path) -> dict | None:
        """One disk entry, or None (with a warning) when unreadable."""
        try:
            entry = json.loads(path.read_text())
            if not isinstance(entry, dict) or "result" not in entry:
                raise ValueError("entry has no 'result' field")
            return entry
        except Exception as exc:
            warnings.warn(
                f"result-store entry {path.name} is unreadable "
                f"({type(exc).__name__}: {exc}); treating as a miss",
                RuntimeWarning, stacklevel=3)
            return None

    def _write(self, path: Path, entry: dict) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        handle, tmp = tempfile.mkstemp(dir=path.parent,
                                       prefix=f".{path.stem}-", suffix=".tmp")
        with os.fdopen(handle, "w") as out:
            json.dump(entry, out, indent=2, sort_keys=True)
            out.write("\n")
        os.replace(tmp, path)

    def keys(self) -> list[str]:
        """Every key the store can serve, memory and disk, sorted."""
        with self._lock:
            keys = set(self._memory)
        if self._directory is not None:
            keys.update(p.stem for p in self._directory.glob("*.json"))
        return sorted(keys)

    def stats(self) -> dict:
        entries = len(self.keys())
        with self._lock:
            return {
                "entries": entries,
                "memory_entries": len(self._memory),
                "hits": self.hits,
                "misses": self.misses,
                "directory": (str(self._directory)
                              if self._directory is not None else None),
            }


def default_store() -> ResultStore:
    """A store on the ``REPRO_SERVICE_STORE`` directory (memory-only when
    unset)."""
    return ResultStore(os.environ.get(STORE_ENV) or None)


__all__ = ["STORE_ENV", "ResultStore", "default_store"]
