"""Command-line entry point for the experiment service.

Usage::

    python -m repro.service serve  [--host H] [--port P] [--store DIR]
                                   [--workers N]
    python -m repro.service submit SPEC.json [--url URL]
    python -m repro.service status [--url URL]
    python -m repro.service suite  [--figures a,b] [--url URL]
                                   [--store DIR] [--out DIR]

``serve`` boots the stdlib HTTP server over a job scheduler and blocks.
``submit`` posts one spec file (``-`` reads stdin) and prints the job.
``status`` prints a running server's health and job table.  ``suite``
submits the whole paper-table suite — every figure cell as one job —
and assembles the serviced results into the same
``BENCH_<rev>_figures.json`` the batch driver writes: identical specs
are served from the ResultStore instead of recomputed, and the bytes
diff clean against ``python -m repro.bench all --serial --out``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import JobScheduler
from repro.service.spec import ExperimentSpec, SpecError
from repro.service.store import ResultStore, default_store


def _spec_from_file(path: str) -> ExperimentSpec:
    text = sys.stdin.read() if path == "-" else Path(path).read_text()
    return ExperimentSpec.from_json(json.loads(text))


def _figure_names(selector: str | None) -> list[str]:
    from repro.bench.__main__ import FIGURES

    if not selector or selector == "all":
        return list(FIGURES)
    names = [name.strip() for name in selector.split(",") if name.strip()]
    unknown = [name for name in names if name not in FIGURES]
    if unknown:
        raise SpecError(f"unknown figures {unknown}; known: {list(FIGURES)}")
    return names


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.server import start_server, stop_server

    store = (ResultStore(args.store) if args.store is not None
             else default_store())
    server = start_server(host=args.host, port=args.port, store=store,
                          workers=args.workers)
    print(f"serving experiments on {server.url} "
          f"(store: {store.directory or 'memory'})", flush=True)
    try:
        server._thread.join()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        stop_server(server)
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    spec = _spec_from_file(args.spec)
    client = ServiceClient(args.url)
    job = client.wait(client.submit(spec)["id"])
    print(json.dumps(job, indent=2, sort_keys=True))
    return 0 if job["state"] == "done" else 1


def cmd_status(args: argparse.Namespace) -> int:
    client = ServiceClient(args.url)
    health = client.health()
    print(json.dumps(health, indent=2, sort_keys=True))
    for job in client.jobs():
        flags = " (cached)" if job["cached"] else ""
        print(f"{job['id']:<10} {job['state']:<8} "
              f"{job['spec'].get('label') or job['key']}{flags}")
    return 0


def _run_suite_specs(specs: list[ExperimentSpec], args) -> list[dict]:
    """Result payloads for the suite's specs, in declared order.

    With ``--url`` every spec is submitted to the running server; without
    one, an in-process scheduler with the same store semantics drains
    the queue synchronously.
    """
    if args.url:
        client = ServiceClient(args.url)
        jobs = [client.submit(spec) for spec in specs]
        results = []
        for job in jobs:
            final = (job if job["state"] in ("done", "failed")
                     else client.wait(job["id"]))
            if final["state"] == "failed":
                raise ServiceError(500, final.get("error", "job failed"))
            results.append(final.get("result") or client.result(final["key"]))
        return results
    store = (ResultStore(args.store) if args.store is not None
             else default_store())
    scheduler = JobScheduler(store=store)
    jobs = [scheduler.submit(spec) for spec in specs]
    scheduler.run_pending()
    results = []
    for job in jobs:
        if job.state.value == "failed":
            raise ServiceError(500, job.error)
        results.append(scheduler.result(job))
    return results


def cmd_suite(args: argparse.Namespace) -> int:
    from repro.bench import experiments
    from repro.bench.report import write_figures_report
    from repro.service.execution import payload_cell

    names = _figure_names(args.figures)
    figures: list[tuple[str, list[ExperimentSpec]]] = [
        (name, experiments.figure_specs(name)) for name in names]
    flat = [spec for _, specs in figures for spec in specs]
    print(f"suite: {len(flat)} cells across {len(names)} figures")
    results = _run_suite_specs(flat, args)
    by_spec = dict(zip(flat, results))

    payloads: dict[str, dict] = {}
    for name, specs in figures:
        rows: dict[str, list[dict]] = {}
        for spec in specs:
            rows.setdefault(spec.label, []).append(payload_cell(by_spec[spec]))
        payloads[name] = rows
        print(f"{name}: {len(specs)} cells serviced")
    path = write_figures_report(payloads, args.out)
    print(f"wrote {path}")
    return 0


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro.service",
                                     description=__doc__)
    sub = parser.add_subparsers(dest="command")

    serve = sub.add_parser("serve", help="boot the HTTP experiment server")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765)
    serve.add_argument("--store", default=None,
                       help="result-store directory (default: "
                            "REPRO_SERVICE_STORE, else memory-only)")
    serve.add_argument("--workers", type=int, default=1,
                       help="scheduler worker threads")
    serve.set_defaults(fn=cmd_serve)

    submit = sub.add_parser("submit", help="submit one spec JSON file")
    submit.add_argument("spec", help="path to a spec JSON ('-' for stdin)")
    submit.add_argument("--url", default="http://127.0.0.1:8765")
    submit.set_defaults(fn=cmd_submit)

    status = sub.add_parser("status", help="server health and job table")
    status.add_argument("--url", default="http://127.0.0.1:8765")
    status.set_defaults(fn=cmd_status)

    suite = sub.add_parser("suite",
                           help="run the paper-table suite as service jobs")
    suite.add_argument("--figures", default="all",
                       help="comma-separated figure names (default: all)")
    suite.add_argument("--url", default=None,
                       help="running server to submit to (default: an "
                            "in-process scheduler)")
    suite.add_argument("--store", default=None,
                       help="result-store directory for the in-process "
                            "scheduler")
    suite.add_argument("--out", default=".",
                       help="directory for BENCH_<rev>_figures.json")
    suite.set_defaults(fn=cmd_suite)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _parser().parse_args(argv)
    if not getattr(args, "fn", None):
        _parser().print_help()
        return 2
    try:
        return args.fn(args)
    except (SpecError, ServiceError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


__all__ = ["main"]
