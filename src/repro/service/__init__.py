"""Benchmark-as-a-service: declarative specs, one execution chokepoint,
a content-addressed result store, and a stdlib job server.

* :mod:`repro.service.spec` — :class:`ExperimentSpec`, the frozen,
  JSON-round-trippable description of one runnable experiment.
* :mod:`repro.service.execution` — the single ``execute_spec``
  chokepoint every bench driver funnels through.
* :mod:`repro.service.store` — :class:`ResultStore`: identical specs
  never recompute.
* :mod:`repro.service.jobs` — the queued/running/done/failed job-state
  machine and scheduler.
* :mod:`repro.service.server` / :mod:`~repro.service.client` — the
  stdlib HTTP layer (imported lazily; ``python -m repro.service`` is
  the CLI).
"""

from repro.service.execution import (
    bind_factory,
    execute_payload,
    execute_spec,
    execute_specs,
    execute_sweep,
    payload_cell,
)
from repro.service.jobs import Job, JobScheduler, JobState
from repro.service.spec import (
    SPEC_VERSION,
    ExperimentSpec,
    SpecError,
    SweepAxes,
    workload_ref,
)
from repro.service.store import STORE_ENV, ResultStore, default_store

__all__ = [
    "SPEC_VERSION",
    "STORE_ENV",
    "ExperimentSpec",
    "Job",
    "JobScheduler",
    "JobState",
    "ResultStore",
    "SpecError",
    "SweepAxes",
    "bind_factory",
    "default_store",
    "execute_payload",
    "execute_spec",
    "execute_specs",
    "execute_sweep",
    "payload_cell",
    "workload_ref",
]
