"""The one ``execute_spec`` chokepoint: spec in, result out.

Every bench driver — the figure tables, the fault sweeps, the wall-clock
and grid benchmarks, and the job server — funnels through this module,
so "run this experiment" has exactly one meaning in the repo:

* :func:`execute_spec` runs one spec in-process: a ``cell`` spec through
  :func:`repro.bench.pool.run_cell` (the same worker body the process
  pool uses, which is what keeps served results byte-identical to batch
  runs), a ``sweep`` spec through the vectorized scenario grid.
* :func:`execute_specs` fans a list out over :mod:`repro.bench.pool`
  with the harness's jobs/env semantics, merging results in declared
  order.
* :func:`execute_payload` wraps the result in its JSON form — the shape
  the :class:`~repro.service.store.ResultStore` persists and the HTTP
  server serves.  Figure payload cells are exactly the dicts
  :func:`repro.bench.report.figure_payload` emits, so a figure table
  assembled from served results diffs clean against the batch path.

No wall-clock here: simulated results must be a pure function of the
spec.  Job timing lives in :mod:`repro.service.jobs`.
"""

from __future__ import annotations

from typing import Iterable

from repro.bench.pool import WorkloadCache, pool_map, run_cell, run_cells
from repro.bench.report import cell_payload
from repro.bench.runner import CellResult, paper_scales, sv_factor
from repro.cluster import (
    PLATFORM_PROFILES,
    ClusterSpec,
    ContentionWindow,
    FaultRates,
    Fleet,
    RecoveryStrategy,
    RunReport,
    Scenario,
    ScenarioGrid,
    Tracer,
    simulate_grid,
)
from repro.cluster.machine import DEFAULT_CONTENTION_SLOWDOWN
from repro.impls.registry import BoundFactory, data_factory
from repro.service.spec import ExperimentSpec


def bind_factory(spec: ExperimentSpec,
                 cache: WorkloadCache | None = None) -> BoundFactory:
    """Resolve a spec's workload references and bind the registry cell.

    The returned factory is the same ``(cluster_spec, tracer) ->
    Implementation`` callable the batch harness builds by hand; data
    comes from the shared workload cache, so two specs naming the same
    corpus share one generation per process.
    """
    if cache is None:
        from repro.bench.pool import default_cache
        cache = default_cache()
    args = [cache.resolve(arg) for arg in spec.args]
    return data_factory(spec.platform, spec.model, spec.variant, *args,
                        seed=spec.seed, **dict(spec.kwargs))


def trace_spec(spec: ExperimentSpec, machines: int,
               cache: WorkloadCache | None = None) -> Tracer:
    """Run a spec's engine once at ``machines`` and return the trace."""
    factory = bind_factory(spec, cache)
    cluster = ClusterSpec(machines=machines)
    tracer = Tracer()
    impl = factory(cluster, tracer)
    with tracer.init_phase():
        impl.initialize()
    for i in range(spec.iterations):
        with tracer.iteration_phase(i):
            impl.iterate(i)
    return tracer


def scales_for(spec: ExperimentSpec, machines: int) -> dict[str, float]:
    """A sweep spec's paper-scale map at one cluster size."""
    axes = spec.axes
    scales = paper_scales(axes.units_per_machine, machines, axes.laptop_units,
                          **dict(axes.extra_scales))
    if axes.sv_block:
        scales["sv"] = sv_factor(machines, axes.laptop_units, axes.sv_block)
    return scales


def hetero_fleet(machines: int, iterations: int = 3) -> Fleet:
    """The benchmark's mixed fleet: half the machines one generation
    older (0.8x), plus a noisy neighbor on machine 0 for every
    iteration phase."""
    older = machines // 2
    return Fleet.generations(
        (machines - older, 1.0), (older, 0.8),
        contention=(ContentionWindow(0, 1, 1 + iterations,
                                     DEFAULT_CONTENTION_SLOWDOWN),))


def _report_payload(report: RunReport) -> dict:
    payload = {
        "completed": not report.failed,
        "aborted": report.aborted,
        "recovered_failures": report.recovered_failures,
        "total_retries": report.total_retries,
        "preemptions_drained": report.preemptions_drained,
        "resize_events": report.resize_events,
        "lost_seconds": report.lost_seconds,
        "checkpoint_seconds": report.checkpoint_seconds,
        "total_seconds": report.total_seconds,
        "cell": report.cell(verbose=True),
    }
    if report.failed:
        payload["fail_phase"] = report.fail_phase
        payload["fail_reason"] = report.fail_reason
    return payload


def execute_sweep(spec: ExperimentSpec,
                  cache: WorkloadCache | None = None) -> dict:
    """One fault-sweep case: one engine run per cluster size, one *grid*
    simulation per size.

    The whole crash-rate axis — plus the lineage platforms'
    checkpointed second ride and the hostile-cluster regimes
    (preemption at each warning window, resize at each delta, a
    mixed-generations fleet) — goes through
    :func:`repro.cluster.simulate_grid` in a single vectorized pass
    over the trace; the per-cell ``Simulator.simulate`` path is the
    oracle the golden suite checks the grid against, so the payload is
    byte-identical to a one-simulation-per-cell loop.
    """
    axes = spec.axes
    profile = PLATFORM_PROFILES[spec.platform]
    lineage = profile.recovery.strategy is RecoveryStrategy.LINEAGE
    cells = []
    for machines in axes.machine_counts:
        tracer = trace_spec(spec, machines, cache)
        frozen = [(p.name, tuple(p.events), tuple(p.memory))
                  for p in tracer.phases]
        scales = scales_for(spec, machines)
        scenarios = []
        tags: list[dict | None] = []
        for rate in axes.crash_rates:
            scenarios.append(Scenario.make(
                machines, scales, rates=FaultRates(machine_crash=rate),
                seed=axes.sweep_seed))
            tags.append({"regime": "crash", "rate": rate, "crash_rate": rate})
        checkpoint_base = len(scenarios)
        if lineage:
            # Second ride for the crash axis only; folded into the
            # matching crash cell rather than tagged as its own cell.
            for rate in axes.crash_rates:
                scenarios.append(Scenario.make(
                    machines, scales, rates=FaultRates(machine_crash=rate),
                    seed=axes.sweep_seed,
                    checkpoint_interval=axes.checkpoint_interval))
                tags.append(None)
        for warning in axes.preemption_warnings:
            scenarios.append(Scenario.make(
                machines, scales,
                rates=FaultRates(preemption=axes.preemption_rate,
                                 preemption_warning=warning),
                seed=axes.sweep_seed))
            tags.append({"regime": "preemption", "rate": axes.preemption_rate,
                         "warning_seconds": warning})
        for delta in axes.resize_deltas:
            scenarios.append(Scenario.make(
                machines, scales,
                rates=FaultRates(resize=axes.resize_rate, resize_delta=delta),
                seed=axes.sweep_seed))
            tags.append({"regime": "resize", "rate": axes.resize_rate,
                         "resize_delta": delta})
        scenarios.append(Scenario.make(
            machines, scales, seed=axes.sweep_seed,
            fleet=hetero_fleet(machines, spec.iterations)))
        tags.append({"regime": "hetero", "rate": 0.0,
                     "fleet": "mixed-generations"})
        grid = simulate_grid(tracer, profile, ScenarioGrid.of(scenarios))
        for i, tag in enumerate(tags):
            if tag is None:
                continue
            cell = {"machines": machines, **tag}
            cell.update(_report_payload(grid.report(i)))
            if tag["regime"] == "crash" and lineage:
                checkpointed = grid.report(checkpoint_base + i)
                cell["checkpointed_total_seconds"] = checkpointed.total_seconds
            cells.append(cell)
        after = [(p.name, tuple(p.events), tuple(p.memory))
                 for p in tracer.phases]
        if after != frozen:
            raise AssertionError(
                f"{spec.name}: fault injection mutated the trace at "
                f"{machines} machines"
            )
    return {
        "platform": spec.platform,
        "model": spec.model,
        "iterations": spec.iterations,
        "trace_immutable": True,
        "cells": cells,
    }


def execute_spec(spec: ExperimentSpec, cache: WorkloadCache | None = None):
    """Execute one spec in this process.

    ``cell`` specs return a :class:`~repro.bench.runner.CellResult`
    (through the exact worker body the pool uses); ``sweep`` specs
    return the fault-sweep case payload dict.
    """
    spec.validate()
    if spec.kind == "cell":
        return run_cell(spec.to_task(), cache)
    return execute_sweep(spec, cache)


def execute_specs(
    specs: Iterable[ExperimentSpec],
    jobs: int | None = None,
    isolate: bool | None = None,
    cache: WorkloadCache | None = None,
) -> list:
    """Execute specs with the harness's pool semantics.

    Results come back in declared spec order regardless of completion
    order; a homogeneous cell list rides :func:`repro.bench.pool.run_cells`
    (shared cache warming, workload pickle handoff), anything else fans
    out through :func:`repro.bench.pool.pool_map`.
    """
    specs = list(specs)
    for spec in specs:
        spec.validate()
    if all(spec.kind == "cell" for spec in specs):
        return run_cells([spec.to_task() for spec in specs], jobs=jobs,
                         isolate=isolate, cache=cache)
    return pool_map(execute_spec, specs, jobs=jobs, isolate=isolate,
                    describe=lambda spec: spec.describe())


def execute_payload(spec: ExperimentSpec,
                    cache: WorkloadCache | None = None) -> dict:
    """Execute a spec and return the JSON-ready result payload.

    This is the serving currency: what the ResultStore persists, what
    the HTTP server returns, and (for cell specs) exactly the per-cell
    dict of :func:`repro.bench.report.figure_payload` plus the row
    label, so figure tables assembled from served results are
    byte-identical to batch ones.
    """
    result = execute_spec(spec, cache)
    if spec.kind == "cell":
        return {"kind": "cell", "label": result.label, **cell_payload(result)}
    return {"kind": "sweep", "label": spec.name, **result}


def payload_cell(payload: dict) -> dict:
    """The figure-table cell dict inside a served ``cell`` payload."""
    return {key: payload[key]
            for key in ("machines", "cell", "paper", "loc", "failed", "phases")}


__all__ = [
    "CellResult",
    "bind_factory",
    "execute_payload",
    "execute_spec",
    "execute_specs",
    "execute_sweep",
    "hetero_fleet",
    "payload_cell",
    "scales_for",
    "trace_spec",
]
