"""``python -m repro.service`` — see :mod:`repro.service.cli`."""

import sys

from repro.service.cli import main

if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
