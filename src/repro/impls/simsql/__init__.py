"""SimSQL implementations of the five benchmark models."""

from repro.impls.simsql.gmm import SimSQLGMM, SimSQLGMMSuperVertex
from repro.impls.simsql.hmm import SimSQLHMMDocument, SimSQLHMMSuperVertex, SimSQLHMMWord
from repro.impls.simsql.imputation import SimSQLImputation
from repro.impls.simsql.lasso import SimSQLLasso
from repro.impls.simsql.lda import SimSQLLDADocument, SimSQLLDASuperVertex, SimSQLLDAWord

__all__ = [
    "SimSQLGMM",
    "SimSQLGMMSuperVertex",
    "SimSQLHMMDocument",
    "SimSQLHMMSuperVertex",
    "SimSQLHMMWord",
    "SimSQLImputation",
    "SimSQLLDADocument",
    "SimSQLLDASuperVertex",
    "SimSQLLDAWord",
    "SimSQLLasso",
]
