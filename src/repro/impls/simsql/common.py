"""Shared plan-building helpers for the SimSQL implementations."""

from __future__ import annotations

from repro.relational import GroupBy, Join, Plan, Project, Union, col, lit


def project(plan: Plan, *outputs: tuple) -> Project:
    """``Project`` with ``(name, expr-or-column-name)`` pairs."""
    resolved = []
    for name, expr in outputs:
        resolved.append((name, col(expr) if isinstance(expr, str) else expr))
    return Project(plan, resolved)


def counts_with_zeros(member_plan: Plan, member_key: str, universe_plan: Plan,
                      universe_key: str, base_expr=None) -> GroupBy:
    """Per-key counts that include zero rows for absent keys.

    SQL's inner-join aggregation drops groups with no members (an empty
    GMM cluster, say); unioning one ``base`` row per key from the
    universe table keeps every key present.  ``base_expr`` (default 0)
    is added to each count — pass the Dirichlet prior column to get
    ``alpha + n_k`` directly.
    """
    base = lit(0.0) if base_expr is None else base_expr
    members = project(member_plan, ("key", member_key), ("w", lit(1.0)))
    bases = project(universe_plan, ("key", universe_key), ("w", base))
    return GroupBy(Union([members, bases]), keys=["key"],
                   aggs=[("value", "sum", col("w"))])


def padded_sum(value_plan: Plan, keys: list[str], value_col: str,
               pad_plan: Plan, pad_value_col: str | None = None) -> GroupBy:
    """Group-sum ``value_plan`` unioned with a padding frame so every
    (key...) combination appears even when no member contributed.

    The pad contributes 0 by default; pass ``pad_value_col`` to add a
    base quantity instead (e.g. the Psi entries under a scatter sum, so
    the result is ``Psi + scatter`` per cluster).
    """
    width = len(keys) + 1
    value_part = project(value_plan, *[(f"k{i}", k) for i, k in enumerate(keys)],
                         ("v", value_col))
    pad_value = lit(0.0) if pad_value_col is None else col(pad_value_col)
    pad_part = project(pad_plan, *[(f"k{i}", k) for i, k in enumerate(keys)],
                       ("v", pad_value))
    if len(value_part.outputs) != width or len(pad_part.outputs) != width:
        raise ValueError("key arity mismatch in padded_sum")
    return GroupBy(Union([value_part, pad_part]),
                   keys=[f"k{i}" for i in range(len(keys))],
                   aggs=[("value", "sum", col("v"))])


def cross(left: Plan, right: Plan) -> Join:
    """An explicit (cheap, small-side) cross join for building frames."""
    return Join(left, right)
