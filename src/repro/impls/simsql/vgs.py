"""Custom VG functions for the SimSQL implementations.

SimSQL ships library VG functions (Dirichlet, Normal, InvWishart, ...);
the paper's codes additionally write their own in C++ — it names
``multinomial_membership`` for the GMM explicitly.  The functions here
are those bespoke pieces.  Internal math is charged at C++ rates by the
executor; every *output row* still pays the relational per-tuple price,
which is the SimSQL trade-off the paper measures.

Model tables arrive as flat tuple lists (a covariance is d^2 rows); the
parse of broadcast model parameters is cached per parameter-table
object, mirroring how a real VG function would deserialize its
parameter record once per mapper rather than once per invocation.
"""

from __future__ import annotations

import numpy as np

from repro.kernels import gmm, hmm, lasso, lda
from repro.kernels.imputation import impute_point, marginal_membership_weights
from repro.relational.vg import VGFunction
from repro.stats import Categorical, MultivariateNormal, sample_categorical_rows
from repro.stats.mvn import ROW_STABLE_MAX_DIM


def _rows_to_vector(rows: list[tuple]) -> np.ndarray:
    """(index, value) rows -> dense vector (indices must be 0..n-1)."""
    out = np.empty(len(rows))
    for index, value in rows:
        out[int(index)] = value
    return out


def _rows_to_matrix(rows: list[tuple], dim: int) -> np.ndarray:
    """(i, j, value) rows -> dense (dim, dim) matrix."""
    out = np.zeros((dim, dim))
    for i, j, value in rows:
        out[int(i), int(j)] = value
    return out


class _ModelCache:
    """One-slot parse cache keyed on the parameter rows' identity."""

    def __init__(self) -> None:
        self._key = None
        self._value = None

    def get(self, key_obj, build):
        key = id(key_obj)
        if self._key != key:
            self._value = build()
            self._key = key
        return self._value


def parse_gmm_model(means_rows, covas_rows, probs_rows) -> gmm.GMMState:
    """Flat model tables -> a GMMState.

    ``means_rows``: (clus_id, dim_id, value); ``covas_rows``:
    (clus_id, d1, d2, value); ``probs_rows``: (clus_id, prob).
    """
    clusters = len(probs_rows)
    dim = max(int(r[1]) for r in means_rows) + 1
    pi = np.empty(clusters)
    for clus_id, prob in probs_rows:
        pi[int(clus_id)] = prob
    means = np.zeros((clusters, dim))
    for clus_id, dim_id, value in means_rows:
        means[int(clus_id), int(dim_id)] = value
    covas = np.zeros((clusters, dim, dim))
    for clus_id, d1, d2, value in covas_rows:
        covas[int(clus_id), int(d1), int(d2)] = value
    return gmm.GMMState(pi, means, covas)


class MultinomialMembershipVG(VGFunction):
    """The paper's bespoke GMM membership VG (Section 5.2).

    Grouped per data point: parameter ``point`` holds the point's
    (dim_id, value) rows; ``means``/``covas``/``probs`` broadcast the
    model.  Emits one ``(clus_id,)`` row.
    """

    name = "multinomial_membership"
    output_columns = ("clus_id",)

    def __init__(self, rng: np.random.Generator) -> None:
        self.rng = rng
        self._cache = _ModelCache()

    def invoke(self, rng, params):
        point = _rows_to_vector(self._require(params, "point"))
        state = self._cache.get(
            params["means"],
            lambda: parse_gmm_model(params["means"], params["covas"], params["probs"]),
        )
        weights = gmm.membership_weights(point[None, :], state)[0]
        return [(int(Categorical(weights).sample(self.rng)),)]

    def invoke_batch(self, rng, grouped):
        """All points of one membership update in a single kernel call.

        The model tables broadcast, so every group shares one parsed
        state; the stacked points go through one
        ``gmm.membership_weights`` call and one vectorized categorical
        draw, which consumes ``self.rng`` exactly like the per-point
        ``Categorical(...).sample`` sequence.  Above
        ``ROW_STABLE_MAX_DIM`` the triangular solve is no longer bitwise
        row-decomposable, so the batch declines and the per-point loop
        runs instead.
        """
        if not grouped:
            return []
        first = grouped[0][1]
        if len(self._require(first, "point")) > ROW_STABLE_MAX_DIM:
            return None
        state = self._cache.get(
            first["means"],
            lambda: parse_gmm_model(first["means"], first["covas"], first["probs"]),
        )
        points = np.vstack([
            _rows_to_vector(self._require(params, "point"))
            for _, params in grouped
        ])
        weights = gmm.membership_weights(points, state)
        labels = sample_categorical_rows(self.rng, weights)
        return [key + (int(label),)
                for (key, _), label in zip(grouped, labels)]

    def flops_per_invocation(self, params):
        d = len(params.get("point", (1,)))
        k = len(params.get("probs", (1,)))
        return float(k * (3 * d * d + 4 * d))


class PosteriorMeanVG(VGFunction):
    """Draws one cluster's posterior mean (needs a matrix inverse, so it
    lives in the VG function, not SQL).

    Grouped per cluster: ``cov`` rows (d1, d2, value) are the cluster's
    current covariance; ``sums`` rows (dim_id, value) the membership-
    weighted coordinate sums; ``count`` one (n,) row.  ``prior_mean``
    (dim_id, value) and ``prior_prec`` (d1, d2, value) broadcast.
    """

    name = "posterior_mean"
    output_columns = ("dim_id", "value")

    def __init__(self, rng: np.random.Generator) -> None:
        self.rng = rng

    def invoke(self, rng, params):
        mu0 = _rows_to_vector(self._require(params, "prior_mean"))
        d = mu0.size
        lambda0 = _rows_to_matrix(self._require(params, "prior_prec"), d)
        sigma = _rows_to_matrix(self._require(params, "cov"), d)
        sums = _rows_to_vector(self._require(params, "sums"))
        (count,), = self._require(params, "count")
        draw = gmm.sample_cluster_mean(self.rng, lambda0, mu0, sigma, count, sums)
        return [(i, float(draw[i])) for i in range(d)]

    # Per-cluster matrix draws interleave; strip the dispatch only.
    invoke_batch = VGFunction._strip_batch

    def flops_per_invocation(self, params):
        d = max(1, len(params.get("prior_mean", (1,))))
        return float(6 * d**3)


class LassoBetaVG(VGFunction):
    """Draws the Bayesian Lasso's beta vector (paper Section 6.2).

    A single invocation: ``gram`` rows (d1, d2, value) are the
    materialized Gram matrix, ``xty`` rows (dim_id, value), ``tau`` rows
    (rigid, tau2_inv) the current auxiliary precisions, ``sigma`` one
    (sigma2,) row.  The ``A^-1 X^T y`` solve happens inside the VG —
    the paper notes SimSQL pays dearly because A itself arrives as p^2
    tuples.
    """

    name = "lasso_beta"
    output_columns = ("rigid", "value")

    def __init__(self, rng: np.random.Generator) -> None:
        self.rng = rng
        self._gram_cache = _ModelCache()

    def invoke(self, rng, params):
        xty = _rows_to_vector(self._require(params, "xty"))
        p = xty.size
        gram = self._gram_cache.get(
            params["gram"], lambda: _rows_to_matrix(params["gram"], p)
        )
        tau2_inv = _rows_to_vector(self._require(params, "tau"))
        (sigma2,), = self._require(params, "sigma")
        draw = lasso.sample_beta_from(self.rng, gram, xty, tau2_inv, float(sigma2))
        return [(j, float(draw[j])) for j in range(p)]

    # A single invocation per plan; strip the dispatch only.
    invoke_batch = VGFunction._strip_batch

    def flops_per_invocation(self, params):
        p = max(1, len(params.get("xty", (1,))))
        return float(4 * p**3)


class HMMDocumentVG(VGFunction):
    """Document-based HMM resampling VG (paper Section 7.5).

    Grouped per document: ``doc`` rows (pos, word, state); broadcast
    ``delta0`` (s, p), ``delta`` (s, s2, p), ``psi`` (s, w, p) — note
    psi is W-wide per state, all as tuples.  Emits the updated
    (pos, word, state) rows; the statistics f/g/h are then aggregated
    with SQL over the emitted tuples, which is exactly the cost the
    paper calls out in Section 7.6.
    """

    name = "hmm_document"
    output_columns = ("pos", "word", "state")

    def __init__(self, rng: np.random.Generator, states: int, vocabulary: int,
                 iteration_fn) -> None:
        self.rng = rng
        self.states = states
        self.vocabulary = vocabulary
        self.iteration_fn = iteration_fn  # () -> current iteration index
        self._cache = _ModelCache()

    def _parse_model(self, params) -> hmm.HMMState:
        delta0 = _rows_to_vector(params["delta0"])
        delta = np.zeros((self.states, self.states))
        for s, s2, p in params["delta"]:
            delta[int(s), int(s2)] = p
        psi = np.zeros((self.states, self.vocabulary))
        for s, w, p in params["psi"]:
            psi[int(s), int(w)] = p
        return hmm.HMMState(delta0=delta0, delta=delta, psi=psi)

    def invoke(self, rng, params):
        model = self._cache.get(params["psi"], lambda: self._parse_model(params))
        doc = sorted(self._require(params, "doc"))
        words = np.array([int(r[1]) for r in doc])
        states = np.array([int(r[2]) for r in doc])
        updated = hmm.resample_document_states(self.rng, words, states, model,
                                               self.iteration_fn())
        return [(pos, int(w), int(s)) for pos, (w, s) in enumerate(zip(words, updated))]

    def invoke_batch(self, rng, grouped):
        """Every document of one update in a single FFBS batch call.

        The model tables broadcast (one parse); the alternating-parity
        sweeps run through ``hmm.resample_documents_batch``, whose one
        stacked categorical draw consumes ``self.rng`` exactly like the
        sequential per-document sweeps.
        """
        if not grouped:
            return []
        first = grouped[0][1]
        model = self._cache.get(first["psi"], lambda: self._parse_model(first))
        values = []
        for _, params in grouped:
            doc = sorted(self._require(params, "doc"))
            words = np.array([int(r[1]) for r in doc])
            states = np.array([int(r[2]) for r in doc])
            values.append((words, states))
        updated = hmm.resample_documents_batch(self.rng, values, model,
                                               self.iteration_fn())
        out = []
        for (key, _), (words, _), new_states in zip(grouped, values, updated):
            out.extend(key + (pos, int(w), int(s))
                       for pos, (w, s) in enumerate(zip(words, new_states)))
        return out

    def flops_per_invocation(self, params):
        return float(len(params.get("doc", ())) * self.states * 4)


class HMMWordVG(VGFunction):
    """Word-based HMM state resampling (paper Section 7.2).

    One invocation per word position ("cell").  Params per group:
    ``cell`` one (word, is_start, is_end) row; ``prev`` / ``next``
    zero-or-one (state,) rows from the neighbor joins; model tables
    broadcast.  Emits the new ``(state,)``.
    """

    name = "hmm_word"
    output_columns = ("state",)

    def __init__(self, rng: np.random.Generator, states: int, vocabulary: int) -> None:
        self.rng = rng
        self.states = states
        self.vocabulary = vocabulary
        self._cache = _ModelCache()

    def _parse_model(self, params) -> hmm.HMMState:
        delta0 = _rows_to_vector(params["delta0"])
        delta = np.zeros((self.states, self.states))
        for s, s2, p in params["delta"]:
            delta[int(s), int(s2)] = p
        psi = np.zeros((self.states, self.vocabulary))
        for s, w, p in params["psi"]:
            psi[int(s), int(w)] = p
        return hmm.HMMState(delta0=delta0, delta=delta, psi=psi)

    def invoke(self, rng, params):
        model = self._cache.get(params["psi"], lambda: self._parse_model(params))
        (word, is_start, is_end), = self._require(params, "cell")
        prev_rows = params.get("prev", [])
        next_rows = params.get("next", [])
        prev_state = (None if is_start or not prev_rows
                      else int(prev_rows[0][0]))
        next_state = (int(next_rows[0][0]) if not is_end and next_rows
                      else None)
        weights = hmm.word_state_weights(model, int(word), prev_state, next_state)
        return [(int(Categorical(weights).sample(self.rng)),)]

    def invoke_batch(self, rng, grouped):
        """All word cells of one parity update in one stacked draw.

        The per-cell weight vectors assemble in group order and resolve
        through a single ``sample_categorical_rows`` call — the same
        draw stream as the sequential per-cell ``Categorical`` samples.
        """
        if not grouped:
            return []
        first = grouped[0][1]
        model = self._cache.get(first["psi"], lambda: self._parse_model(first))
        weights = np.empty((len(grouped), self.states))
        for i, (_, params) in enumerate(grouped):
            (word, is_start, is_end), = self._require(params, "cell")
            prev_rows = params.get("prev", [])
            next_rows = params.get("next", [])
            prev_state = (None if is_start or not prev_rows
                          else int(prev_rows[0][0]))
            next_state = (int(next_rows[0][0]) if not is_end and next_rows
                          else None)
            weights[i] = hmm.word_state_weights(model, int(word), prev_state,
                                                next_state)
        draws = sample_categorical_rows(self.rng, weights)
        return [key + (int(s),) for (key, _), s in zip(grouped, draws)]

    def flops_per_invocation(self, params):
        return float(self.states * 4)


class HMMSuperVertexVG(VGFunction):
    """Super-vertex HMM VG: a block of documents per invocation, but —
    as the paper stresses (Section 7.6) — every resampled state still
    leaves the function as a tuple for SQL to aggregate."""

    name = "hmm_super_vertex"
    output_columns = ("doc_id", "pos", "word", "state")

    def __init__(self, rng: np.random.Generator, states: int, vocabulary: int,
                 iteration_fn) -> None:
        self.rng = rng
        self.states = states
        self.vocabulary = vocabulary
        self.iteration_fn = iteration_fn
        self._cache = _ModelCache()

    def invoke(self, rng, params):
        parser = HMMWordVG(self.rng, self.states, self.vocabulary)
        model = self._cache.get(params["psi"], lambda: parser._parse_model(params))
        by_doc: dict[int, list[tuple]] = {}
        for doc_id, pos, word, state in self._require(params, "doc"):
            by_doc.setdefault(int(doc_id), []).append((int(pos), int(word), int(state)))
        out = []
        iteration = self.iteration_fn()
        for doc_id, rows in sorted(by_doc.items()):
            rows.sort()
            words = np.array([r[1] for r in rows])
            states = np.array([r[2] for r in rows])
            updated = hmm.resample_document_states(self.rng, words, states,
                                                   model, iteration)
            out.extend(
                (doc_id, pos, int(w), int(s))
                for pos, (w, s) in enumerate(zip(words, updated))
            )
        return out

    def invoke_batch(self, rng, grouped):
        """Every super vertex's block in one FFBS batch call.

        Documents flatten in (group, doc_id) order — the scalar loop's
        exact sequence — and the stacked draw consumes ``self.rng``
        identically.
        """
        if not grouped:
            return []
        parser = HMMWordVG(self.rng, self.states, self.vocabulary)
        first = grouped[0][1]
        model = self._cache.get(first["psi"], lambda: parser._parse_model(first))
        iteration = self.iteration_fn()
        values = []
        doc_keys = []  # (group key, doc_id, words) in scalar order
        for key, params in grouped:
            by_doc: dict[int, list[tuple]] = {}
            for doc_id, pos, word, state in self._require(params, "doc"):
                by_doc.setdefault(int(doc_id), []).append(
                    (int(pos), int(word), int(state)))
            for doc_id, rows in sorted(by_doc.items()):
                rows.sort()
                words = np.array([r[1] for r in rows])
                states = np.array([r[2] for r in rows])
                values.append((words, states))
                doc_keys.append((key, doc_id, words))
        updated = hmm.resample_documents_batch(self.rng, values, model, iteration)
        out = []
        for (key, doc_id, words), new_states in zip(doc_keys, updated):
            out.extend(key + (doc_id, pos, int(w), int(s))
                       for pos, (w, s) in enumerate(zip(words, new_states)))
        return out

    def flops_per_invocation(self, params):
        return float(len(params.get("doc", ())) * self.states * 4)


class LDAWordVG(VGFunction):
    """Word-based LDA topic resampling: one invocation per word cell,
    theta rows joined in per cell (the data-sized join that makes the
    word-based SimSQL LDA take 16 hours per iteration)."""

    name = "lda_word"
    output_columns = ("topic",)

    def __init__(self, rng: np.random.Generator, topics: int, vocabulary: int) -> None:
        self.rng = rng
        self.topics = topics
        self.vocabulary = vocabulary
        self._cache = _ModelCache()

    def _parse_phi(self, rows) -> np.ndarray:
        phi = np.zeros((self.topics, self.vocabulary))
        for t, w, p in rows:
            phi[int(t), int(w)] = p
        return phi

    def invoke(self, rng, params):
        phi = self._cache.get(params["phi"], lambda: self._parse_phi(params["phi"]))
        (word,), = self._require(params, "cell")
        theta = _rows_to_vector(self._require(params, "theta"))
        weights = lda.word_topic_weights(theta, phi, int(word))
        return [(int(Categorical(weights).sample(self.rng)),)]

    def invoke_batch(self, rng, grouped):
        """All word cells of one update in one stacked draw.

        Phi broadcasts (one parse); each cell's theta rows still join in
        per group — the data-sized join cost is unchanged — but the
        topic draws collapse into a single ``sample_categorical_rows``
        call over the stacked weight rows.
        """
        if not grouped:
            return []
        first = grouped[0][1]
        phi = self._cache.get(first["phi"], lambda: self._parse_phi(first["phi"]))
        weights = np.empty((len(grouped), self.topics))
        for i, (_, params) in enumerate(grouped):
            (word,), = self._require(params, "cell")
            theta = _rows_to_vector(self._require(params, "theta"))
            weights[i] = lda.word_topic_weights(theta, phi, int(word))
        draws = sample_categorical_rows(self.rng, weights)
        return [key + (int(t),) for (key, _), t in zip(grouped, draws)]

    def flops_per_invocation(self, params):
        return float(self.topics * 3)


class LDADocumentVG(VGFunction):
    """Document-based LDA resampling VG (paper Section 8.1).

    Grouped per document: ``doc`` rows (pos, word); ``theta`` rows
    (topic, p); broadcast ``phi`` rows (topic, word, p).  Emits the new
    topic assignment per word plus the document's new theta rows
    (flagged by row kind), all as tuples to be aggregated by SQL.
    """

    name = "lda_document"
    output_columns = ("kind", "a", "b", "value")

    def __init__(self, rng: np.random.Generator, topics: int, vocabulary: int,
                 alpha: float = lda.DEFAULT_ALPHA) -> None:
        self.rng = rng
        self.topics = topics
        self.vocabulary = vocabulary
        self.alpha = alpha
        self._cache = _ModelCache()

    def _parse_phi(self, rows) -> np.ndarray:
        phi = np.zeros((self.topics, self.vocabulary))
        for t, w, p in rows:
            phi[int(t), int(w)] = p
        return phi

    def invoke(self, rng, params):
        phi = self._cache.get(params["phi"], lambda: self._parse_phi(params["phi"]))
        doc = sorted(self._require(params, "doc"))
        words = np.array([int(r[1]) for r in doc])
        theta = _rows_to_vector(self._require(params, "theta"))
        z, new_theta, _ = lda.resample_document(self.rng, words, theta, phi, self.alpha)
        out = [("z", int(pos), int(w), float(t))
               for pos, (w, t) in enumerate(zip(words, z))]
        out.extend(("theta", int(t), 0, float(p)) for t, p in enumerate(new_theta))
        return out

    def invoke_batch(self, rng, grouped):
        """Every document of one update through the batch LDA kernel.

        Phi broadcasts (one parse); the whole block's topic-weight
        matrix is computed upfront by ``lda.resample_documents_batch``
        while the per-document (z, theta) draws stay interleaved in
        group order — the same stream as the sequential invokes.
        """
        if not grouped:
            return []
        first = grouped[0][1]
        phi = self._cache.get(first["phi"], lambda: self._parse_phi(first["phi"]))
        values = []
        for _, params in grouped:
            doc = sorted(self._require(params, "doc"))
            words = np.array([int(r[1]) for r in doc])
            theta = _rows_to_vector(self._require(params, "theta"))
            values.append((words, theta))
        updated = lda.resample_documents_batch(self.rng, values, phi, self.alpha)
        out = []
        for (key, _), (words, _), (z, new_theta) in zip(grouped, values, updated):
            out.extend(key + ("z", int(pos), int(w), float(t))
                       for pos, (w, t) in enumerate(zip(words, z)))
            out.extend(key + ("theta", int(t), 0, float(p))
                       for t, p in enumerate(new_theta))
        return out

    def flops_per_invocation(self, params):
        return float(len(params.get("doc", ())) * self.topics * 4)


class GMMSuperVertexVG(VGFunction):
    """Super-vertex GMM VG with in-function pre-aggregation (Section 5.6:
    "a similar tactic was used to make the SimSQL GMM super vertex
    simulation the fastest of all of the platforms").

    Grouped per super vertex: ``block`` rows (row_id, <point blob>);
    model tables broadcast.  Emits one pre-aggregated statistics row per
    non-empty cluster: (clus_id, n, dim_id?, ...) — flattened as
    (clus_id, stat_kind, i, j, value) tuples, already tiny.
    """

    name = "gmm_super_vertex"
    output_columns = ("clus_id", "stat", "i", "j", "value")

    def __init__(self, rng: np.random.Generator) -> None:
        self.rng = rng
        self._cache = _ModelCache()

    def invoke(self, rng, params):
        state = self._cache.get(
            params["means"],
            lambda: parse_gmm_model(params["means"], params["covas"], params["probs"]),
        )
        block_rows = self._require(params, "block")
        points = np.vstack([blob for _, blob in block_rows])
        labels = sample_categorical_rows(
            self.rng, gmm.membership_weights(points, state)
        )
        stats = gmm.sufficient_statistics(points, labels, state)
        out = []
        for k in range(state.clusters):
            if stats.counts[k] == 0:
                continue
            out.append((k, "n", 0, 0, float(stats.counts[k])))
            out.extend((k, "sum", i, 0, float(v)) for i, v in enumerate(stats.sums[k]))
            out.extend(
                (k, "scatter", i, j, float(stats.scatters[k][i, j]))
                for i in range(points.shape[1]) for j in range(points.shape[1])
            )
        return out

    def invoke_batch(self, rng, grouped):
        """Every super vertex's block in one stacked membership draw.

        The per-block weight matrices concatenate and resolve through a
        single ``sample_categorical_rows`` call (the merged draw equals
        the sequential per-block draws bitwise); sufficient statistics
        then aggregate per block as in the scalar path.  Declines above
        ``ROW_STABLE_MAX_DIM``, where the triangular solve inside the
        stacked density is no longer row-decomposable.
        """
        if not grouped:
            return []
        first = grouped[0][1]
        state = self._cache.get(
            first["means"],
            lambda: parse_gmm_model(first["means"], first["covas"], first["probs"]),
        )
        blocks = [
            np.vstack([blob for _, blob in self._require(params, "block")])
            for _, params in grouped
        ]
        if blocks[0].shape[1] > ROW_STABLE_MAX_DIM:
            return None
        stacked = np.vstack(blocks)
        labels = sample_categorical_rows(
            self.rng, gmm.membership_weights(stacked, state)
        )
        out = []
        offset = 0
        for (key, _), points in zip(grouped, blocks):
            block_labels = labels[offset:offset + len(points)]
            offset += len(points)
            stats = gmm.sufficient_statistics(points, block_labels, state)
            for k in range(state.clusters):
                if stats.counts[k] == 0:
                    continue
                out.append(key + (k, "n", 0, 0, float(stats.counts[k])))
                out.extend(key + (k, "sum", i, 0, float(v))
                           for i, v in enumerate(stats.sums[k]))
                out.extend(
                    key + (k, "scatter", i, j, float(stats.scatters[k][i, j]))
                    for i in range(points.shape[1]) for j in range(points.shape[1])
                )
        return out

    def flops_per_invocation(self, params):
        block = params.get("block", ())
        n = sum(len(blob) for _, blob in block) if block else 1
        return float(n * 200)


class ImputationVG(VGFunction):
    """Per-point imputation + membership + statistics VG (Section 9).

    Grouped per data point: ``point`` rows (dim_id, value, censored);
    model broadcast.  Emits the completed coordinates and the chosen
    cluster, as tuples.
    """

    name = "gaussian_impute"
    output_columns = ("kind", "i", "value")

    def __init__(self, rng: np.random.Generator) -> None:
        self.rng = rng
        self._cache = _ModelCache()

    def invoke(self, rng, params):
        state = self._cache.get(
            params["means"],
            lambda: parse_gmm_model(params["means"], params["covas"], params["probs"]),
        )
        rows = sorted(self._require(params, "point"))
        x = np.array([r[1] for r in rows])
        mask = np.array([bool(r[2]) for r in rows])
        weights = marginal_membership_weights(x[None, :], mask[None, :], state)[0]
        k = int(Categorical(weights).sample(self.rng))
        completed = impute_point(self.rng, x, mask, state.means[k],
                                 state.covariances[k])
        out = [("x", i, float(v)) for i, v in enumerate(completed)]
        out.append(("c", k, 1.0))
        return out

    def invoke_batch(self, rng, grouped):
        """All points of one imputation sweep, weights bulk-computed.

        The per-point draw pairs (membership, then conditional-normal
        impute) must stay interleaved in point order to preserve the
        stream, but the marginal membership weights depend only on last
        sweep's state, so they batch through one pattern-grouped
        ``marginal_membership_weights`` call; the conditional-normal
        factorizations hoist per (cluster, censoring-pattern) pair
        exactly as in ``impute_points_batch``.  Declines above
        ``ROW_STABLE_MAX_DIM`` where the stacked density is no longer
        row-decomposable.
        """
        if not grouped:
            return []
        first = grouped[0][1]
        if len(self._require(first, "point")) > ROW_STABLE_MAX_DIM:
            return None
        state = self._cache.get(
            first["means"],
            lambda: parse_gmm_model(first["means"], first["covas"], first["probs"]),
        )
        points = []
        masks = []
        for _, params in grouped:
            rows = sorted(self._require(params, "point"))
            points.append([r[1] for r in rows])
            masks.append([bool(r[2]) for r in rows])
        points_arr = np.array(points, dtype=float)
        masks_arr = np.array(masks, dtype=bool)
        weights = marginal_membership_weights(points_arr, masks_arr, state)
        dists: dict[int, MultivariateNormal] = {}
        conditioners: dict[tuple[int, bytes], object] = {}
        out = []
        for j, (key, _) in enumerate(grouped):
            k = int(Categorical(weights[j]).sample(self.rng))
            x = points_arr[j]
            row_mask = masks_arr[j]
            if not row_mask.any():
                completed = x
            else:
                dist = dists.get(k)
                if dist is None:
                    dist = dists[k] = MultivariateNormal(state.means[k],
                                                         state.covariances[k])
                if row_mask.all():
                    completed = dist.sample(self.rng)
                else:
                    cache_key = (k, row_mask.tobytes())
                    conditional = conditioners.get(cache_key)
                    if conditional is None:
                        conditional = conditioners[cache_key] = dist.conditioner(
                            np.flatnonzero(~row_mask))
                    completed = x.copy()
                    completed[row_mask] = conditional.sample_given(
                        self.rng, x[~row_mask])
            out.extend(key + ("x", i, float(v)) for i, v in enumerate(completed))
            out.append(key + ("c", k, 1.0))
        return out

    def flops_per_invocation(self, params):
        d = len(params.get("point", (1,)))
        return float(10 * d**3)
