"""SimSQL HMM implementations (paper Section 7.2, Figure 3).

``SimSQLHMMWord`` is the paper's featured word-based code — the only
word-based HMM any platform could run.  Its ``words`` table stores, with
every position, its *predecessor and successor cell ids* explicitly:
this is the paper's ``nextPos`` workaround for the SimSQL optimizer
quirk, which turns ``t1.curPos = t2.curPos + 1`` into a cross product
but handles ``t1.prev_cell = t2.cell_id`` as an equi-join.  The state
update is a multi-way join parameterizing one Categorical VG invocation
per word of the active parity.

``SimSQLHMMDocument`` resamples a document per VG invocation (the y
values still exit as tuples to be aggregated in SQL — Section 7.6);
``SimSQLHMMSuperVertex`` batches many documents per invocation but the
per-word tuple output and SQL aggregation remain, which is why the
paper's SV SimSQL HMM still needs two hours per iteration while Giraph
needs 2.5 minutes.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.machine import ClusterSpec
from repro.cluster.tracer import Tracer
from repro.impls.base import Implementation
from repro.impls.simsql.common import cross, padded_sum, project
from repro.impls.simsql.vgs import HMMDocumentVG, HMMSuperVertexVG, HMMWordVG
from repro.graph.supervertex import group_items
from repro.kernels import hmm
from repro.relational import (
    Alias,
    Database,
    DirichletVG,
    GroupBy,
    Join,
    MarkovChain,
    RandomTable,
    Scan,
    Select,
    Union,
    VGOp,
    col,
    lit,
    mod,
    versioned,
)


class _SimSQLHMMBase(Implementation):
    """Shared setup: model tables, frames, Dirichlet model updates."""

    platform = "simsql"
    model = "hmm"

    def __init__(self, documents: list, vocabulary: int, states: int,
                 rng: np.random.Generator, cluster_spec: ClusterSpec,
                 tracer: Tracer | None = None, alpha: float = hmm.DEFAULT_ALPHA,
                 beta: float = hmm.DEFAULT_BETA) -> None:
        self.documents = [np.asarray(d, dtype=int) for d in documents]
        self.vocabulary = vocabulary
        self.states = states
        self.rng = rng
        self.alpha = alpha
        self.beta = beta
        self.db = Database(cluster_spec, tracer=tracer, rng=rng)
        self.chain: MarkovChain | None = None
        self._iteration = 0

    def scale_groups(self) -> tuple[str, ...]:
        return ("data", "vocab")

    def _create_frames(self) -> None:
        self.db.create_table("state_frame", ["state"],
                             [(s,) for s in range(self.states)])
        self.db.create_table("vocab", ["word"], [(w,) for w in range(self.vocabulary)])
        self.db.create_table("hyper", ["alpha", "beta"], [(self.alpha, self.beta)])

    def iterate(self, iteration: int) -> None:
        assert self.chain is not None
        self._iteration = iteration
        self.chain.step()

    # -- model random tables (shared by all three granularities) --------

    def _state_word_counts(self, i: int):
        """Plan producing (state, word) occurrence rows for iteration i."""
        raise NotImplementedError

    def _transition_counts(self, i: int):
        """Plan producing (state, next_state) occurrence rows."""
        raise NotImplementedError

    def _start_counts(self, i: int):
        """Plan producing (state,) start-occurrence rows."""
        raise NotImplementedError

    def _emits(self) -> RandomTable:
        def init(db):
            alpha_rows = project(
                cross(Scan("state_frame"), cross(Scan("vocab"), Scan("hyper"))),
                ("state", "state"), ("id", "word"), ("a", "beta"),
            )
            vg = VGOp(DirichletVG(), {"alpha": alpha_rows}, group_key="state")
            return project(vg, ("state", "state"), ("word", "out_id"),
                           ("prob", "prob"))

        def update(db, i):
            counts = GroupBy(self._state_word_counts(i),
                             keys=["state", "word"],
                             aggs=[("n", "count", None)], out_scale="vocab")
            frame = project(
                cross(Scan("state_frame"), cross(Scan("vocab"), Scan("hyper"))),
                ("state", "state"), ("word", "word"), ("value", "beta"),
            )
            alpha_rows = project(
                padded_sum(project(counts, ("state", "state"), ("word", "word"),
                                   ("value", "n")),
                           ["state", "word"], "value", frame, pad_value_col="value"),
                ("state", "k0"), ("id", "k1"), ("a", "value"),
            )
            vg = VGOp(DirichletVG(), {"alpha": alpha_rows}, group_key="state")
            return project(vg, ("state", "state"), ("word", "out_id"),
                           ("prob", "prob"))

        return RandomTable("emits", init, update)

    def _trans(self) -> RandomTable:
        def init(db):
            alpha_rows = project(
                cross(Alias(Scan("state_frame"), "s1"),
                      cross(Alias(Scan("state_frame"), "s2"), Scan("hyper"))),
                ("state", "s1.state"), ("id", "s2.state"), ("a", "alpha"),
            )
            vg = VGOp(DirichletVG(), {"alpha": alpha_rows}, group_key="state")
            return project(vg, ("state", "state"), ("next_state", "out_id"),
                           ("prob", "prob"))

        def update(db, i):
            counts = GroupBy(self._transition_counts(i),
                             keys=["state", "next_state"],
                             aggs=[("n", "count", None)])
            frame = project(
                cross(Alias(Scan("state_frame"), "s1"),
                      cross(Alias(Scan("state_frame"), "s2"), Scan("hyper"))),
                ("state", "s1.state"), ("next_state", "s2.state"), ("value", "alpha"),
            )
            alpha_rows = project(
                padded_sum(project(counts, ("state", "state"),
                                   ("next_state", "next_state"), ("value", "n")),
                           ["state", "next_state"], "value", frame,
                           pad_value_col="value"),
                ("state", "k0"), ("id", "k1"), ("a", "value"),
            )
            vg = VGOp(DirichletVG(), {"alpha": alpha_rows}, group_key="state")
            return project(vg, ("state", "state"), ("next_state", "out_id"),
                           ("prob", "prob"))

        return RandomTable("trans", init, update)

    def _starts(self) -> RandomTable:
        def init(db):
            alpha_rows = project(cross(Scan("state_frame"), Scan("hyper")),
                                 ("id", "state"), ("a", "alpha"))
            return project(VGOp(DirichletVG(), {"alpha": alpha_rows}),
                           ("state", "out_id"), ("prob", "prob"))

        def update(db, i):
            counts = GroupBy(self._start_counts(i), keys=["state"],
                             aggs=[("n", "count", None)])
            frame = project(cross(Scan("state_frame"), Scan("hyper")),
                            ("state", "state"), ("value", "alpha"))
            alpha_rows = project(
                padded_sum(project(counts, ("state", "state"), ("value", "n")),
                           ["state"], "value", frame, pad_value_col="value"),
                ("id", "k0"), ("a", "value"),
            )
            return project(VGOp(DirichletVG(), {"alpha": alpha_rows}),
                           ("state", "out_id"), ("prob", "prob"))

        return RandomTable("starts", init, update)

    # -- validation helpers ---------------------------------------------

    def current_model(self) -> hmm.HMMState:
        assert self.chain is not None
        delta0 = np.zeros(self.states)
        for s, p in self.chain.current("starts").rows:
            delta0[int(s)] = p
        delta = np.zeros((self.states, self.states))
        for s, s2, p in self.chain.current("trans").rows:
            delta[int(s), int(s2)] = p
        psi = np.zeros((self.states, self.vocabulary))
        for s, w, p in self.chain.current("emits").rows:
            psi[int(s), int(w)] = p
        return hmm.HMMState(delta0=delta0, delta=delta, psi=psi)


class SimSQLHMMDocument(_SimSQLHMMBase):
    variant = "document"

    def initialize(self) -> None:
        db = self.db
        self._create_frames()
        self.chain = MarkovChain(db, [
            self._states(), self._emits(), self._trans(), self._starts(),
        ])
        self.chain.initialize()

    def _states(self) -> RandomTable:
        rng, states_k = self.rng, self.states

        def init(db):
            rows = []
            for doc_id, words in enumerate(self.documents):
                for pos, word in enumerate(words):
                    rows.append((doc_id, pos, int(word), int(rng.integers(states_k))))
            db.create_table("word_init", ["doc_id", "pos", "word", "state"],
                            rows, scale="data")
            return Scan("word_init")

        def update(db, i):
            vg = VGOp(
                HMMDocumentVG(rng, states_k, self.vocabulary,
                              lambda: self._iteration), {
                    "doc": Scan(versioned("states", i - 1)),
                    "delta0": Scan(versioned("starts", i - 1)),
                    "delta": Scan(versioned("trans", i - 1)),
                    "psi": Scan(versioned("emits", i - 1)),
                }, group_key="doc_id", out_scale="data",
            )
            return vg  # (doc_id, pos, word, state)

        return RandomTable("states", init, update)

    def _state_word_counts(self, i: int):
        return project(Scan(versioned("states", i)), ("state", "state"),
                       ("word", "word"))

    def _transition_counts(self, i: int):
        s1 = Alias(Scan(versioned("states", i)), "s1")
        s2 = Alias(Scan(versioned("states", i)), "s2")
        joined = Join(
            project(s1, ("doc_id", "s1.doc_id"), ("next_pos", col("s1.pos") + lit(1)),
                    ("state", "s1.state")),
            project(s2, ("doc_id", "s2.doc_id"), ("pos", "s2.pos"),
                    ("state2", "s2.state")),
            predicate=(col("doc_id") == col("doc_id"))
            & (col("next_pos") == col("pos")),
            out_scale="data",
        )
        return project(joined, ("state", "state"), ("next_state", "state2"))

    def _start_counts(self, i: int):
        return project(Select(Scan(versioned("states", i)), col("pos") == lit(0)),
                       ("state", "state"))


class SimSQLHMMSuperVertex(SimSQLHMMDocument):
    variant = "super-vertex"

    def __init__(self, documents, vocabulary, states, rng, cluster_spec,
                 tracer=None, alpha=hmm.DEFAULT_ALPHA, beta=hmm.DEFAULT_BETA,
                 docs_per_block: int = 16) -> None:
        super().__init__(documents, vocabulary, states, rng, cluster_spec,
                         tracer, alpha, beta)
        self.docs_per_block = docs_per_block

    def _states(self) -> RandomTable:
        rng, states_k = self.rng, self.states
        blocks = group_items(list(range(len(self.documents))),
                             max(1, len(self.documents) // self.docs_per_block))
        doc_to_block = {d: b for b, block in enumerate(blocks) for d in block}

        def init(db):
            rows = []
            for doc_id, words in enumerate(self.documents):
                for pos, word in enumerate(words):
                    rows.append((doc_to_block[doc_id], doc_id, pos, int(word),
                                 int(rng.integers(states_k))))
            db.create_table("word_init",
                            ["sv_id", "doc_id", "pos", "word", "state"],
                            rows, scale="data")
            return Scan("word_init")

        def update(db, i):
            vg = VGOp(
                HMMSuperVertexVG(rng, states_k, self.vocabulary,
                                 lambda: self._iteration), {
                    "doc": Scan(versioned("states", i - 1)),
                    "delta0": Scan(versioned("starts", i - 1)),
                    "delta": Scan(versioned("trans", i - 1)),
                    "psi": Scan(versioned("emits", i - 1)),
                }, group_key="sv_id", out_scale="data",
            )
            return vg  # (sv_id, doc_id, pos, word, state)

        return RandomTable("states", init, update)


class SimSQLHMMWord(_SimSQLHMMBase):
    """The word-based HMM with the paper's nextPos equi-join workaround."""

    variant = "word"

    def initialize(self) -> None:
        db = self.db
        self._create_frames()
        # Static word-position table with explicit neighbor cell ids
        # (the nextPos trick: plain column equalities for the optimizer).
        rows = []
        init_states = []
        cell = 0
        rng = self.rng
        for doc_id, words in enumerate(self.documents):
            length = len(words)
            for pos, word in enumerate(words):
                prev_cell = cell - 1 if pos > 0 else -1
                next_cell = cell + 1 if pos < length - 1 else -1
                rows.append((cell, doc_id, pos, prev_cell, next_cell, int(word),
                             pos == 0, pos == length - 1))
                init_states.append((cell, int(rng.integers(self.states))))
                cell += 1
        db.create_table(
            "words",
            ["cell_id", "doc_id", "pos", "prev_cell", "next_cell", "word",
             "is_start", "is_end"],
            rows, scale="data",
        )
        self._init_rows = init_states
        self.chain = MarkovChain(db, [
            self._states(), self._emits(), self._trans(), self._starts(),
        ])
        self.chain.initialize()

    def _states(self) -> RandomTable:
        rng = self.rng

        def init(db):
            db.create_table("state_init", ["cell_id", "state"], self._init_rows,
                            scale="data")
            return Scan("state_init")

        def update(db, i):
            prev_states = versioned("states", i - 1)
            parity_active = mod(col("pos") + lit(1), 2) == lit(self._iteration % 2)
            active_cells = Select(Scan("words"), parity_active)
            # The word's own row.
            cell = project(active_cells, ("cell_id", "cell_id"), ("word", "word"),
                           ("is_start", "is_start"), ("is_end", "is_end"))
            # Neighbor states via the explicit prev/next cell ids —
            # plain equi-joins, not pos = pos + 1 cross products.
            prev = project(
                Join(project(active_cells, ("cell_id", "cell_id"),
                             ("prev_cell", "prev_cell")),
                     Alias(Scan(prev_states), "p"),
                     predicate=col("prev_cell") == col("p.cell_id"),
                     out_scale="data"),
                ("cell_id", "cell_id"), ("state", "p.state"),
            )
            nxt = project(
                Join(project(active_cells, ("cell_id", "cell_id"),
                             ("next_cell", "next_cell")),
                     Alias(Scan(prev_states), "n"),
                     predicate=col("next_cell") == col("n.cell_id"),
                     out_scale="data"),
                ("cell_id", "cell_id"), ("state", "n.state"),
            )
            vg = VGOp(
                HMMWordVG(rng, self.states, self.vocabulary), {
                    "cell": cell, "prev": prev, "next": nxt,
                    "delta0": Scan(versioned("starts", i - 1)),
                    "delta": Scan(versioned("trans", i - 1)),
                    "psi": Scan(versioned("emits", i - 1)),
                }, group_key="cell_id", out_scale="data",
            )
            untouched = project(
                Join(Select(Scan("words"), ~parity_active),
                     Alias(Scan(prev_states), "s"),
                     predicate=col("cell_id") == col("s.cell_id"),
                     out_scale="data"),
                ("cell_id", "cell_id"), ("state", "s.state"),
            )
            return Union([project(vg, ("cell_id", "cell_id"), ("state", "state")),
                          untouched])

        return RandomTable("states", init, update)

    def _joined_states(self, i: int):
        return Join(Scan(versioned("states", i)), Scan("words"),
                    predicate=col("cell_id") == col("cell_id"), out_scale="data")

    def _state_word_counts(self, i: int):
        return project(self._joined_states(i), ("state", "state"), ("word", "word"))

    def _transition_counts(self, i: int):
        joined = self._joined_states(i)
        withnext = Join(
            project(joined, ("state", "state"), ("next_cell", "next_cell")),
            Alias(Scan(versioned("states", i)), "s2"),
            predicate=col("next_cell") == col("s2.cell_id"), out_scale="data",
        )
        return project(withnext, ("state", "state"), ("next_state", "s2.state"))

    def _start_counts(self, i: int):
        return project(Select(self._joined_states(i), col("is_start") == lit(True)),
                       ("state", "state"))
