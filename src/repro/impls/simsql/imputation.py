"""SimSQL Gaussian imputation (paper Section 9, Figure 5).

The GMM chain with the data itself turned into a random table: each
iteration, one ``gaussian_impute`` VG invocation per data point redraws
the censored coordinates (and the point's membership) from the current
model; the GMM model tables then update from the completed values.  The
model-update plans are inherited from :class:`SimSQLGMM`, re-pointed at
the per-iteration ``point_state`` table.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.machine import ClusterSpec
from repro.cluster.tracer import Tracer
from repro.impls.simsql.common import project
from repro.impls.simsql.gmm import SimSQLGMM
from repro.kernels import gmm
from repro.impls.simsql.vgs import ImputationVG
from repro.relational import (
    Join,
    MarkovChain,
    RandomTable,
    Scan,
    Select,
    VGOp,
    col,
    lit,
    versioned,
)


class SimSQLImputation(SimSQLGMM):
    platform = "simsql"
    model = "imputation"
    variant = "initial"

    def __init__(self, censored_points: np.ndarray, mask: np.ndarray, clusters: int,
                 rng: np.random.Generator, cluster_spec: ClusterSpec,
                 tracer: Tracer | None = None,
                 alpha: float = gmm.DEFAULT_ALPHA) -> None:
        censored_points = np.asarray(censored_points, dtype=float)
        self.mask = np.asarray(mask, dtype=bool)
        column_means = np.nanmean(censored_points, axis=0)
        completed = censored_points.copy()
        fill = np.broadcast_to(column_means, completed.shape)
        completed[self.mask] = fill[self.mask]
        super().__init__(completed, clusters, rng, cluster_spec, tracer, alpha)

    def initialize(self) -> None:
        n, d = self.points.shape
        # The base class builds "data" (the mean-filled completion used
        # for the empirical priors), the model frames and prior views —
        # then we re-wire the chain around the point_state table.
        db = self.db
        db.create_table(
            "censor_mask", ["data_id", "dim_id", "censored"],
            [(j, i, bool(self.mask[j, i])) for j in range(n) for i in range(d)],
            scale="data",
        )
        super().initialize()
        assert self.chain is not None
        self.chain = MarkovChain(db, [
            self._point_state(), self._clus_prob(), self._clus_means(),
            self._clus_covas(),
        ])
        # The model tables' version 0 already exists from the parent
        # initialize(); rebuild the chain's bookkeeping around them by
        # storing point_state[0] and aligning the version counter.
        state0 = db.query(self._point_state().init(db))
        db.store(versioned("point_state", 0), state0)
        self.chain._version = 0

    # -- the data-as-a-random-table --------------------------------------

    def _point_state(self) -> RandomTable:
        def init(db):
            # Version 0: the mean-filled completion plus the version-0
            # memberships already drawn by the GMM initialization.
            values = project(
                Join(Scan("data"), Scan("censor_mask"),
                     predicate=(col("data_id") == col("data_id"))
                     & (col("dim_id") == col("dim_id")),
                     out_scale="data"),
                ("data_id", "data_id"), ("kind", lit("x")), ("i", "dim_id"),
                ("value", "data_val"),
            )
            members = project(Scan(versioned("membership", 0)),
                              ("data_id", "data_id"), ("kind", lit("c")),
                              ("i", "clus_id"), ("value", lit(1.0)))
            from repro.relational import Union

            return Union([values, members])

        def update(db, i):
            prev = versioned("point_state", i - 1)
            prev_values = Select(Scan(prev), col("kind") == lit("x"))
            point_rows = project(
                Join(project(prev_values, ("data_id", "data_id"), ("dim_id", "i"),
                             ("value", "value")),
                     Scan("censor_mask"),
                     predicate=(col("data_id") == col("data_id"))
                     & (col("dim_id") == col("dim_id")),
                     out_scale="data"),
                ("data_id", "data_id"), ("dim_id", "dim_id"), ("value", "value"),
                ("censored", "censored"),
            )
            vg = VGOp(
                ImputationVG(self.rng), {
                    "point": point_rows,
                    "means": Scan(versioned("clus_means", i - 1)),
                    "covas": Scan(versioned("clus_covas", i - 1)),
                    "probs": Scan(versioned("clus_prob", i - 1)),
                }, group_key="data_id", out_scale="data",
            )
            return vg  # (data_id, kind, i, value)

        return RandomTable("point_state", init, update)

    # -- re-point the inherited GMM model updates ------------------------

    def _member_plan(self, i: int):
        members = Select(Scan(versioned("point_state", i)), col("kind") == lit("c"))
        return project(members, ("data_id", "data_id"), ("clus_id", "i"))

    def _values_plan(self, i: int):
        values = Select(Scan(versioned("point_state", i)), col("kind") == lit("x"))
        return project(values, ("data_id", "data_id"), ("dim_id", "i"),
                       ("data_val", "value"))

    # -- validation helpers ------------------------------------------------

    def completed_points(self) -> np.ndarray:
        assert self.chain is not None
        n, d = self.points.shape
        out = np.empty((n, d))
        table = self.chain.current("point_state")
        for data_id, kind, i, value in table.rows:
            if kind == "x":
                out[int(data_id), int(i)] = value
        return out

    def labels(self) -> np.ndarray:
        assert self.chain is not None
        n = self.points.shape[0]
        out = np.zeros(n, dtype=int)
        for data_id, kind, i, value in self.chain.current("point_state").rows:
            if kind == "c":
                out[int(data_id)] = int(i)
        return out
