"""SimSQL GMM implementations (paper Section 5.2, Figure 1).

The database schema follows the paper exactly:

    clus_means[i](clus_id, dim_id, dim_value)
    clus_covas[i](clus_id, dim_id1, dim_id2, dim_value)
    clus_prob[i](clus_id, prob)
    membership[i](data_id, clus_id)
    data(data_id, dim_id, data_val)          -- one tuple per coordinate
    cluster(clus_id, pi_prior)

so a d-dimensional point is d tuples and a covariance is d^2 tuples —
the tuple-orientation whose cost the paper measures.  The per-iteration
scatter aggregation joins ``data`` with itself per point and GROUP-BYs
(clus, d1, d2), the "costly GROUP BY" of Section 5.6.

``SimSQLGMMSuperVertex`` replaces the per-point pipeline with one VG
invocation per block of points that outputs *pre-aggregated* statistics
tuples — the Section 5.6 trick that made SimSQL the fastest platform on
this task.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.machine import ClusterSpec
from repro.cluster.tracer import Tracer
from repro.impls.base import Implementation
from repro.impls.simsql.common import counts_with_zeros, cross, padded_sum, project
from repro.impls.simsql.vgs import GMMSuperVertexVG, MultinomialMembershipVG, PosteriorMeanVG
from repro.kernels import gmm
from repro.relational import (
    Alias,
    Database,
    DirichletVG,
    GroupBy,
    InvWishartVG,
    Join,
    MarkovChain,
    Project,
    RandomTable,
    Scan,
    VGOp,
    col,
    lit,
    versioned,
)
from repro.graph.supervertex import group_rows


class SimSQLGMM(Implementation):
    platform = "simsql"
    model = "gmm"
    variant = "initial"

    def __init__(self, points: np.ndarray, clusters: int, rng: np.random.Generator,
                 cluster_spec: ClusterSpec, tracer: Tracer | None = None,
                 alpha: float = gmm.DEFAULT_ALPHA) -> None:
        self.points = np.asarray(points, dtype=float)
        self.clusters = clusters
        self.rng = rng
        self.alpha = alpha
        self.db = Database(cluster_spec, tracer=tracer, rng=rng)
        self.chain: MarkovChain | None = None

    def scale_groups(self) -> tuple[str, ...]:
        return ("data", "d", "d2")

    # ------------------------------------------------------------------

    def initialize(self) -> None:
        n, d = self.points.shape
        db = self.db
        db.create_table(
            "data", ["data_id", "dim_id", "data_val"],
            [(j, i, float(self.points[j, i])) for j in range(n) for i in range(d)],
            scale="data",
        )
        db.create_table("cluster", ["clus_id", "pi_prior"],
                        [(k, self.alpha) for k in range(self.clusters)])
        db.create_table("dims", ["dim_id"], [(i,) for i in range(d)])
        db.create_table("df_prior", ["v"], [(gmm.df_prior(d),)])

        # create view mean_prior(dim_id, dim_val) as
        #   select dim_id, avg(data_val) from data group by dim_id;
        db.create_view("mean_prior", GroupBy(
            Scan("data"), keys=["dim_id"], aggs=[("dim_val", "avg", col("data_val"))],
        ), materialized=True)

        # Per-dimension variance, then the diagonal Psi / Lambda0 frames.
        db.create_view("dim_var", Project(GroupBy(
            Scan("data"), keys=["dim_id"],
            aggs=[("s", "sum", col("data_val")),
                  ("s2", "sum", col("data_val") * col("data_val")),
                  ("n", "count", None)],
        ), [("dim_id", col("dim_id")),
            ("variance", col("s2") / col("n") - (col("s") / col("n")) * (col("s") / col("n")))]),
            materialized=True)

        zero_frame = project(cross(Alias(Scan("dims"), "a"), Alias(Scan("dims"), "b")),
                             ("dim_id1", "a.dim_id"), ("dim_id2", "b.dim_id"))
        diag = project(Scan("dim_var"), ("dim_id1", "dim_id"), ("dim_id2", "dim_id"),
                       ("value", "variance"))
        cov_prior = padded_sum(diag, ["dim_id1", "dim_id2"], "value", zero_frame)
        db.create_view("cov_prior", project(
            cov_prior, ("dim_id1", "k0"), ("dim_id2", "k1"), ("value", "value"),
        ), materialized=True)

        prec_diag = project(Scan("dim_var"), ("dim_id1", "dim_id"),
                            ("dim_id2", "dim_id"),
                            ("value", lit(1.0) / col("variance")))
        prec_prior = padded_sum(prec_diag, ["dim_id1", "dim_id2"], "value", zero_frame)
        db.create_view("prec_prior", project(
            prec_prior, ("dim_id1", "k0"), ("dim_id2", "k1"), ("value", "value"),
        ), materialized=True)

        self.chain = MarkovChain(db, [
            self._clus_prob(), self._clus_means(), self._clus_covas(),
            self._membership(),
        ])
        self.chain.initialize()

    def iterate(self, iteration: int) -> None:
        assert self.chain is not None
        self.chain.step()

    # ------------------------------------------------------------------
    # plan sources (the imputation subclass redirects these to the
    # per-iteration completed data)
    # ------------------------------------------------------------------

    def _member_plan(self, i: int):
        """Membership rows (data_id, clus_id) feeding iteration ``i``."""
        return Scan(versioned("membership", i - 1))

    def _values_plan(self, i: int):
        """Data rows (data_id, dim_id, data_val) feeding iteration ``i``."""
        return Scan("data")

    # ------------------------------------------------------------------
    # random-table definitions
    # ------------------------------------------------------------------

    def _clus_prob(self) -> RandomTable:
        def init(db):
            # create table clus_prob[0] as with diri_res as Dirichlet(
            #   select clus_id, pi_prior from cluster) select ...;
            alpha = project(Scan("cluster"), ("id", "clus_id"), ("a", "pi_prior"))
            return project(VGOp(DirichletVG(), {"alpha": alpha}),
                           ("clus_id", "out_id"), ("prob", "prob"))

        def update(db, i):
            # Dirichlet over alpha + per-cluster membership counts
            # (zero-padded so empty clusters stay in the simplex).
            alpha = counts_with_zeros(
                self._member_plan(i), "clus_id",
                Scan("cluster"), "clus_id", base_expr=col("pi_prior"),
            )
            return project(VGOp(DirichletVG(), {"alpha": project(
                alpha, ("id", "key"), ("a", "value"))}),
                ("clus_id", "out_id"), ("prob", "prob"))

        return RandomTable("clus_prob", init, update)

    def _clus_means(self) -> RandomTable:
        def init(db):
            vg = VGOp(
                self._normal_vg(), {
                    "clusters": Scan("cluster"),
                    "mean": Scan("mean_prior"),
                    "cov": Scan("cov_prior"),
                }, group_key="clus_id",
            )
            return project(vg, ("clus_id", "clus_id"), ("dim_id", "dim_id"),
                           ("dim_value", "value"))

        def update(db, i):
            # Per-(cluster, dim) coordinate sums, zero-padded.
            sums_raw = GroupBy(
                Join(self._member_plan(i), self._values_plan(i),
                     predicate=col("data_id") == col("data_id"),
                     out_scale="data*d"),
                keys=["clus_id", "dim_id"],
                aggs=[("s", "sum", col("data_val"))],
            )
            zeros = project(cross(Scan("cluster"), Scan("dims")),
                            ("clus_id", "clus_id"), ("dim_id", "dim_id"))
            sums = project(
                padded_sum(sums_raw, ["clus_id", "dim_id"], "s", zeros),
                ("clus_id", "k0"), ("dim_id", "k1"), ("value", "value"),
            )
            counts = project(counts_with_zeros(
                self._member_plan(i), "clus_id", Scan("cluster"), "clus_id",
            ), ("clus_id", "key"), ("n", "value"))
            vg = VGOp(
                PosteriorMeanVG(self.rng), {
                    "sums": sums,
                    "count": counts,
                    "cov": Scan(versioned("clus_covas", i - 1)),
                    "prior_mean": Scan("mean_prior"),
                    "prior_prec": Scan("prec_prior"),
                }, group_key="clus_id",
            )
            return project(vg, ("clus_id", "clus_id"), ("dim_id", "dim_id"),
                           ("dim_value", "value"))

        return RandomTable("clus_means", init, update)

    def _clus_covas(self) -> RandomTable:
        def init(db):
            vg = VGOp(
                InvWishartVG(), {
                    "clusters": Scan("cluster"),
                    "scale": Scan("cov_prior"),
                    "df": Scan("df_prior"),
                }, group_key="clus_id",
            )
            return project(vg, ("clus_id", "clus_id"), ("dim_id1", "dim_id1"),
                           ("dim_id2", "dim_id2"), ("dim_value", "value"))

        def update(db, i):
            means = versioned("clus_means", i - 1)
            # The Section 5.6 "costly GROUP BY": one (x - mu)(x - mu)^T
            # entry per (point, d1, d2), aggregated per cluster.
            m = Alias(self._member_plan(i), "m")
            x1 = Alias(self._values_plan(i), "x1")
            x2 = Alias(self._values_plan(i), "x2")
            mu1 = Alias(Scan(means), "mu1")
            mu2 = Alias(Scan(means), "mu2")
            joined = Join(
                Join(
                    Join(m, x1, predicate=col("m.data_id") == col("x1.data_id"),
                         out_scale="data*d"),
                    x2, predicate=col("m.data_id") == col("x2.data_id"),
                    out_scale="data*d2",
                ),
                cross(mu1, mu2),
                predicate=(col("m.clus_id") == col("mu1.clus_id"))
                & (col("m.clus_id") == col("mu2.clus_id"))
                & (col("x1.dim_id") == col("mu1.dim_id"))
                & (col("x2.dim_id") == col("mu2.dim_id")),
                out_scale="data*d2",
            )
            scatter = GroupBy(
                project(
                    joined, ("clus_id", "m.clus_id"),
                    ("dim_id1", "x1.dim_id"), ("dim_id2", "x2.dim_id"),
                    ("value", (col("x1.data_val") - col("mu1.dim_value"))
                     * (col("x2.data_val") - col("mu2.dim_value"))),
                ),
                keys=["clus_id", "dim_id1", "dim_id2"],
                aggs=[("value", "sum", col("value"))],
            )
            psi_frame = project(
                cross(Scan("cluster"), Scan("cov_prior")),
                ("clus_id", "clus_id"), ("dim_id1", "dim_id1"),
                ("dim_id2", "dim_id2"), ("value", "value"),
            )
            # scale = Psi + scatter: the Psi frame is the pad, carrying
            # its own values.
            scale = project(
                padded_sum(scatter, ["clus_id", "dim_id1", "dim_id2"], "value",
                           psi_frame, pad_value_col="value"),
                ("clus_id", "k0"), ("dim_id1", "k1"), ("dim_id2", "k2"),
                ("value", "value"),
            )
            df = project(counts_with_zeros(
                self._member_plan(i), "clus_id",
                project(cross(Scan("cluster"), Scan("df_prior")),
                        ("clus_id", "clus_id"), ("pi_prior", "v")),
                "clus_id", base_expr=col("pi_prior"),
            ), ("clus_id", "key"), ("df", "value"))
            vg = VGOp(
                InvWishartVG(), {"scale": scale, "df": df}, group_key="clus_id",
            )
            return project(vg, ("clus_id", "clus_id"), ("dim_id1", "dim_id1"),
                           ("dim_id2", "dim_id2"), ("dim_value", "value"))

        return RandomTable("clus_covas", init, update)

    def _membership(self) -> RandomTable:
        def plan(db, i):
            vg = VGOp(
                MultinomialMembershipVG(self.rng), {
                    "point": Scan("data"),
                    "means": Scan(versioned("clus_means", i)),
                    "covas": Scan(versioned("clus_covas", i)),
                    "probs": Scan(versioned("clus_prob", i)),
                }, group_key="data_id", out_scale="data",
            )
            return vg  # schema (data_id, clus_id) already

        return RandomTable("membership", lambda db: plan(db, 0),
                           lambda db, i: plan(db, i))

    def _normal_vg(self):
        from repro.relational import NormalVG

        return NormalVG()

    # ------------------------------------------------------------------

    def state(self) -> gmm.GMMState:
        """The current model as arrays (for validation)."""
        assert self.chain is not None
        from repro.impls.simsql.vgs import parse_gmm_model

        means = self.chain.current("clus_means").rows
        covas = self.chain.current("clus_covas").rows
        probs = self.chain.current("clus_prob").rows
        return parse_gmm_model(means, covas, probs)

    def labels(self) -> np.ndarray:
        assert self.chain is not None
        rows = sorted(self.chain.current("membership").rows)
        return np.array([clus for _, clus in rows], dtype=int)


class SimSQLGMMSuperVertex(SimSQLGMM):
    """Figure 1(c): block-of-points VG with in-function pre-aggregation."""

    variant = "super-vertex"

    def __init__(self, points, clusters, rng, cluster_spec, tracer=None,
                 alpha=gmm.DEFAULT_ALPHA, block_points: int = 64) -> None:
        super().__init__(points, clusters, rng, cluster_spec, tracer, alpha)
        self.block_points = block_points

    def scale_groups(self) -> tuple[str, ...]:
        return ("data", "sv")

    def initialize(self) -> None:
        n, d = self.points.shape
        db = self.db
        blocks = group_rows(self.points, max(1, n // self.block_points))
        # Cardinality scales with the super-vertex count, not the data
        # (the per-row blob payloads do, which the scan byte estimate
        # under-counts — an accepted, documented approximation).
        db.create_table(
            "data_sv", ["sv_id", "row_id", "block"],
            [(b, 0, block) for b, block in enumerate(blocks)],
            scale="sv",
        )
        # The tuple-per-coordinate table still exists for the priors.
        db.create_table(
            "data", ["data_id", "dim_id", "data_val"],
            [(j, i, float(self.points[j, i])) for j in range(n) for i in range(d)],
            scale="data",
        )
        db.create_table("cluster", ["clus_id", "pi_prior"],
                        [(k, self.alpha) for k in range(self.clusters)])
        db.create_table("dims", ["dim_id"], [(i,) for i in range(d)])
        db.create_table("df_prior", ["v"], [(gmm.df_prior(d),)])
        db.create_view("mean_prior", GroupBy(
            Scan("data"), keys=["dim_id"], aggs=[("dim_val", "avg", col("data_val"))],
        ), materialized=True)
        db.create_view("dim_var", Project(GroupBy(
            Scan("data"), keys=["dim_id"],
            aggs=[("s", "sum", col("data_val")),
                  ("s2", "sum", col("data_val") * col("data_val")),
                  ("n", "count", None)],
        ), [("dim_id", col("dim_id")),
            ("variance", col("s2") / col("n") - (col("s") / col("n")) * (col("s") / col("n")))]),
            materialized=True)
        zero_frame = project(cross(Alias(Scan("dims"), "a"), Alias(Scan("dims"), "b")),
                             ("dim_id1", "a.dim_id"), ("dim_id2", "b.dim_id"))
        diag = project(Scan("dim_var"), ("dim_id1", "dim_id"), ("dim_id2", "dim_id"),
                       ("value", "variance"))
        db.create_view("cov_prior", project(
            padded_sum(diag, ["dim_id1", "dim_id2"], "value", zero_frame),
            ("dim_id1", "k0"), ("dim_id2", "k1"), ("value", "value"),
        ), materialized=True)
        prec_diag = project(Scan("dim_var"), ("dim_id1", "dim_id"),
                            ("dim_id2", "dim_id"),
                            ("value", lit(1.0) / col("variance")))
        db.create_view("prec_prior", project(
            padded_sum(prec_diag, ["dim_id1", "dim_id2"], "value", zero_frame),
            ("dim_id1", "k0"), ("dim_id2", "k1"), ("value", "value"),
        ), materialized=True)

        self.chain = MarkovChain(db, [
            self._clus_prob_sv(), self._clus_means_sv(), self._clus_covas_sv(),
            self._sv_stats(),
        ])
        self.chain.initialize()

    # The super-vertex chain's statistics table replaces membership.

    def _sv_stats(self) -> RandomTable:
        def plan(db, i):
            return VGOp(
                GMMSuperVertexVG(self.rng), {
                    "block": Scan("data_sv"),
                    "means": Scan(versioned("clus_means", i)),
                    "covas": Scan(versioned("clus_covas", i)),
                    "probs": Scan(versioned("clus_prob", i)),
                }, group_key="sv_id", out_scale="sv", flops_scale="data",
            )

        return RandomTable("sv_stats", lambda db: plan(db, 0),
                           lambda db, i: plan(db, i))

    def _clus_prob_sv(self) -> RandomTable:
        def init(db):
            alpha = project(Scan("cluster"), ("id", "clus_id"), ("a", "pi_prior"))
            return project(VGOp(DirichletVG(), {"alpha": alpha}),
                           ("clus_id", "out_id"), ("prob", "prob"))

        def update(db, i):
            stats = versioned("sv_stats", i - 1)
            member_counts = GroupBy(
                project(_select_stat(Scan(stats), "n"),
                        ("clus_id", "clus_id"), ("value", "value")),
                keys=["clus_id"], aggs=[("n", "sum", col("value"))],
            )
            padded = padded_sum(
                project(member_counts, ("clus_id", "clus_id"), ("value", "n")),
                ["clus_id"], "value",
                project(Scan("cluster"), ("clus_id", "clus_id")),
            )
            combined = project(
                Join(padded, Scan("cluster"), predicate=col("k0") == col("clus_id")),
                ("id", "k0"), ("a", col("value") + col("pi_prior")),
            )
            return project(VGOp(DirichletVG(), {"alpha": combined}),
                           ("clus_id", "out_id"), ("prob", "prob"))

        return RandomTable("clus_prob", init, update)

    def _clus_means_sv(self) -> RandomTable:
        def init(db):
            vg = VGOp(self._normal_vg(), {
                "clusters": Scan("cluster"), "mean": Scan("mean_prior"),
                "cov": Scan("cov_prior"),
            }, group_key="clus_id")
            return project(vg, ("clus_id", "clus_id"), ("dim_id", "dim_id"),
                           ("dim_value", "value"))

        def update(db, i):
            stats = versioned("sv_stats", i - 1)
            sums_raw = GroupBy(
                project(_select_stat(Scan(stats), "sum"),
                        ("clus_id", "clus_id"), ("dim_id", "i"), ("value", "value")),
                keys=["clus_id", "dim_id"], aggs=[("s", "sum", col("value"))],
            )
            zeros = project(cross(Scan("cluster"), Scan("dims")),
                            ("clus_id", "clus_id"), ("dim_id", "dim_id"))
            sums = project(padded_sum(sums_raw, ["clus_id", "dim_id"], "s", zeros),
                           ("clus_id", "k0"), ("dim_id", "k1"), ("value", "value"))
            counts_raw = GroupBy(
                project(_select_stat(Scan(stats), "n"),
                        ("clus_id", "clus_id"), ("value", "value")),
                keys=["clus_id"], aggs=[("n", "sum", col("value"))],
            )
            counts = project(padded_sum(
                project(counts_raw, ("clus_id", "clus_id"), ("value", "n")),
                ["clus_id"], "value",
                project(Scan("cluster"), ("clus_id", "clus_id"))),
                ("clus_id", "k0"), ("n", "value"))
            vg = VGOp(PosteriorMeanVG(self.rng), {
                "sums": sums, "count": counts,
                "cov": Scan(versioned("clus_covas", i - 1)),
                "prior_mean": Scan("mean_prior"), "prior_prec": Scan("prec_prior"),
            }, group_key="clus_id")
            return project(vg, ("clus_id", "clus_id"), ("dim_id", "dim_id"),
                           ("dim_value", "value"))

        return RandomTable("clus_means", init, update)

    def _clus_covas_sv(self) -> RandomTable:
        def init(db):
            vg = VGOp(InvWishartVG(), {
                "clusters": Scan("cluster"), "scale": Scan("cov_prior"),
                "df": Scan("df_prior"),
            }, group_key="clus_id")
            return project(vg, ("clus_id", "clus_id"), ("dim_id1", "dim_id1"),
                           ("dim_id2", "dim_id2"), ("dim_value", "value"))

        def update(db, i):
            stats = versioned("sv_stats", i - 1)
            scatter_raw = GroupBy(
                project(_select_stat(Scan(stats), "scatter"),
                        ("clus_id", "clus_id"), ("dim_id1", "i"),
                        ("dim_id2", "j"), ("value", "value")),
                keys=["clus_id", "dim_id1", "dim_id2"],
                aggs=[("value", "sum", col("value"))],
            )
            psi_frame = project(cross(Scan("cluster"), Scan("cov_prior")),
                                ("clus_id", "clus_id"), ("dim_id1", "dim_id1"),
                                ("dim_id2", "dim_id2"), ("value", "value"))
            scale = project(
                padded_sum(scatter_raw, ["clus_id", "dim_id1", "dim_id2"],
                           "value", psi_frame, pad_value_col="value"),
                ("clus_id", "k0"), ("dim_id1", "k1"), ("dim_id2", "k2"),
                ("value", "value"),
            )
            counts_raw = GroupBy(
                project(_select_stat(Scan(stats), "n"),
                        ("clus_id", "clus_id"), ("value", "value")),
                keys=["clus_id"], aggs=[("n", "sum", col("value"))],
            )
            df_base = project(cross(Scan("cluster"), Scan("df_prior")),
                              ("clus_id", "clus_id"), ("value", "v"))
            df = project(padded_sum(
                project(counts_raw, ("clus_id", "clus_id"), ("value", "n")),
                ["clus_id"], "value", project(df_base, ("clus_id", "clus_id"))),
                ("clus_id", "k0"), ("partial", "value"))
            df_full = project(
                Join(df, df_base, predicate=col("clus_id") == col("clus_id")),
                ("clus_id", "clus_id"), ("df", col("partial") + col("value")),
            )
            vg = VGOp(InvWishartVG(), {"scale": scale, "df": df_full},
                      group_key="clus_id")
            return project(vg, ("clus_id", "clus_id"), ("dim_id1", "dim_id1"),
                           ("dim_id2", "dim_id2"), ("dim_value", "value"))

        return RandomTable("clus_covas", init, update)

    def labels(self) -> np.ndarray:
        raise NotImplementedError(
            "the super-vertex chain aggregates memberships inside the VG"
        )


def _select_stat(plan, stat: str):
    """Filter the flattened super-vertex statistics rows by kind."""
    from repro.relational import Select

    return Select(plan, col("stat") == lit(stat))
