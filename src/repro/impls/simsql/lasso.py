"""SimSQL Bayesian Lasso (paper Section 6.2, Figure 2).

Initialization materializes three views the chain reuses every
iteration: the Gram matrix (a self-join of the tuple-per-coordinate
``data`` table, producing one group per Gram entry — the computation the
paper blames for SimSQL's 2:40 h setup), the centered response, and
``X^T y``.  The chain then runs three random tables per iteration:

    tau[i]   — one InvGaussian VG invocation per regressor
               (the paper's ``FOR EACH r IN regressor IDs``),
    beta[i]  — a single lasso_beta VG fed p^2 Gram tuples,
    sigma[i] — an InvGamma VG whose scale aggregates the residual sum
               of squares with a data-sized join.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.machine import ClusterSpec
from repro.cluster.tracer import Tracer
from repro.impls.base import Implementation
from repro.impls.simsql.common import cross, project
from repro.impls.simsql.vgs import LassoBetaVG
from repro.kernels import lasso
from repro.relational import (
    Alias,
    Database,
    GroupBy,
    InvGammaVG,
    InvGaussianVG,
    Join,
    MarkovChain,
    RandomTable,
    Scan,
    VGOp,
    col,
    lit,
    sqrt,
    versioned,
)


class SimSQLLasso(Implementation):
    platform = "simsql"
    model = "lasso"
    variant = "initial"

    def __init__(self, x: np.ndarray, y: np.ndarray, rng: np.random.Generator,
                 cluster_spec: ClusterSpec, tracer: Tracer | None = None,
                 lam: float = lasso.DEFAULT_LAM) -> None:
        self.x = np.asarray(x, dtype=float)
        self.y = np.asarray(y, dtype=float)
        self.rng = rng
        self.lam = lam
        self.db = Database(cluster_spec, tracer=tracer, rng=rng)
        self.chain: MarkovChain | None = None

    def scale_groups(self) -> tuple[str, ...]:
        return ("data", "p", "p2")

    def initialize(self) -> None:
        n, p = self.x.shape
        db = self.db
        db.create_table(
            "data", ["data_id", "dim_id", "value"],
            [(j, i, float(self.x[j, i])) for j in range(n) for i in range(p)],
            scale="data",
        )
        db.create_table("response", ["data_id", "y"],
                        [(j, float(self.y[j])) for j in range(n)], scale="data")
        db.create_table("regressor", ["rigid"], [(j,) for j in range(p)])
        db.create_table("prior", ["lam"], [(self.lam,)])

        # Materialized view 1: the centered response.
        db.create_view("y_mean", GroupBy(
            Scan("response"), keys=[], aggs=[("m", "avg", col("y"))],
        ), materialized=True)
        db.create_view("y_center", project(
            cross(Scan("response"), Scan("y_mean")),
            ("data_id", "data_id"), ("yc", col("y") - col("m")),
        ), materialized=True)

        # Materialized view 2: the Gram matrix — a self-join over data_id
        # with one aggregation group per (d1, d2) entry.
        x1 = Alias(Scan("data"), "x1")
        x2 = Alias(Scan("data"), "x2")
        gram = GroupBy(
            project(
                Join(x1, x2, predicate=col("x1.data_id") == col("x2.data_id"),
                     out_scale="data*p2"),
                ("d1", "x1.dim_id"), ("d2", "x2.dim_id"),
                ("v", col("x1.value") * col("x2.value")),
            ),
            keys=["d1", "d2"], aggs=[("value", "sum", col("v"))], out_scale="p2",
        )
        db.create_view("gram", gram, materialized=True)

        # Materialized view 3: X^T y over the centered response.
        xty = GroupBy(
            project(
                Join(Scan("data"), Scan("y_center"),
                     predicate=col("data_id") == col("data_id"),
                     out_scale="data*p"),
                ("dim_id", "dim_id"), ("v", col("value") * col("yc")),
            ),
            keys=["dim_id"], aggs=[("value", "sum", col("v"))], out_scale="p",
        )
        db.create_view("xty", xty, materialized=True)

        self.chain = MarkovChain(db, [self._tau(), self._beta(), self._sigma()])
        self.chain.initialize()

    def iterate(self, iteration: int) -> None:
        assert self.chain is not None
        self.chain.step()

    # ------------------------------------------------------------------

    def _tau(self) -> RandomTable:
        def init(db):
            return project(Scan("regressor"), ("rigid", "rigid"),
                           ("tau2_inv", lit(1.0)))

        def update(db, i):
            # CREATE TABLE tau[i] AS FOR EACH r IN regressor IDs
            #   WITH IG AS InvGaussian(sqrt(lam^2 sigma / beta^2), lam^2) ...
            beta = Alias(Scan(versioned("beta", i - 1)), "b")
            sig = Alias(Scan(versioned("sigma", i - 1)), "s")
            pr = Alias(Scan("prior"), "pr")
            mu = project(
                cross(cross(beta, sig), pr),
                ("rigid", "b.rigid"),
                ("value", sqrt((col("pr.lam") * col("pr.lam") * col("s.sigma2"))
                               / (col("b.value") * col("b.value") + lit(1e-300)))),
            )
            lam2 = project(Scan("prior"), ("value", col("lam") * col("lam")))
            vg = VGOp(InvGaussianVG(), {"mu": mu, "lam": lam2}, group_key="rigid",
                      out_scale="p")
            return project(vg, ("rigid", "rigid"), ("tau2_inv", "value"))

        return RandomTable("tau", init, update)

    def _beta(self) -> RandomTable:
        def plan(db, i):
            vg = VGOp(LassoBetaVG(self.rng), {
                "gram": Scan("gram"),
                "xty": Scan("xty"),
                "tau": Scan(versioned("tau", i)),
                "sigma": (Scan(versioned("sigma", i - 1)) if i > 0
                          else project(Scan("prior"), ("sigma2", lit(1.0)))),
            }, out_scale="p")
            return project(vg, ("rigid", "rigid"), ("value", "value"))

        return RandomTable("beta", lambda db: plan(db, 0),
                           lambda db, i: plan(db, i))

    def _sigma(self) -> RandomTable:
        def init(db):
            return project(Scan("prior"), ("sigma2", lit(1.0)))

        def update(db, i):
            beta = versioned("beta", i)
            tau = versioned("tau", i)
            # Residual sum of squares: join data with beta per dimension,
            # aggregate the prediction per point, square the residual.
            predictions = GroupBy(
                project(
                    Join(Scan("data"), Scan(beta),
                         predicate=col("dim_id") == col("rigid"),
                         out_scale="data*p"),
                    ("data_id", "data_id"),
                    # beta's clashing "value" column is suffixed by the join
                    ("term", col("value") * col("value_r")),
                ),
                keys=["data_id"], aggs=[("pred", "sum", col("term"))],
                out_scale="data",
            )
            rss = GroupBy(
                project(
                    Join(predictions, Scan("y_center"),
                         predicate=col("data_id") == col("data_id"),
                         out_scale="data"),
                    ("sq", (col("yc") - col("pred")) * (col("yc") - col("pred"))),
                ),
                keys=[], aggs=[("value", "sum", col("sq"))],
            )
            # sum_j beta_j^2 / tau_j^2  (tau table stores 1/tau^2).
            shrink = GroupBy(
                project(
                    Join(Scan(beta), Scan(tau), predicate=col("rigid") == col("rigid")),
                    ("term", col("value") * col("value") * col("tau2_inv")),
                ),
                keys=[], aggs=[("value", "sum", col("term"))],
            )
            n_count = GroupBy(Scan("response"), keys=[], aggs=[("n", "count", None)])
            p_count = GroupBy(Scan("regressor"), keys=[], aggs=[("p", "count", None)])
            shape = project(
                cross(n_count, p_count),
                ("value", (lit(1.0) + col("n") + col("p")) / lit(2.0)),
            )
            scale = project(
                cross(rss, Alias(shrink, "sh")),
                ("value", (lit(2.0) + col("value") + col("sh.value")) / lit(2.0)),
            )
            vg = VGOp(InvGammaVG(), {"shape": shape, "scale": scale})
            return project(vg, ("sigma2", "value"))

        return RandomTable("sigma", init, update)

    # ------------------------------------------------------------------

    def state(self) -> lasso.LassoState:
        assert self.chain is not None
        beta_rows = sorted(self.chain.current("beta").rows)
        tau_rows = sorted(self.chain.current("tau").rows)
        (sigma2,), = self.chain.current("sigma").rows
        return lasso.LassoState(
            beta=np.array([v for _, v in beta_rows]),
            sigma2=float(sigma2),
            tau2_inv=np.array([v for _, v in tau_rows]),
        )
