"""SimSQL LDA implementations (paper Section 8, Figure 4).

``SimSQLLDAWord`` is the pure word-based sampler only SimSQL could run
(16.5 hours per iteration at scale): one Categorical VG invocation per
word, parameterized by a join that fans the document's theta out to
every word cell.  ``SimSQLLDADocument`` resamples per document;
``SimSQLLDASuperVertex`` per block of documents.  In every variant the
z values exit the VG as tuples and theta/phi are rebuilt by SQL
aggregation + Dirichlet VGs.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.machine import ClusterSpec
from repro.cluster.tracer import Tracer
from repro.impls.base import Implementation
from repro.impls.simsql.common import cross, padded_sum, project
from repro.impls.simsql.vgs import LDADocumentVG, LDAWordVG
from repro.graph.supervertex import group_items
from repro.kernels import lda
from repro.relational import (
    Alias,
    Database,
    DirichletVG,
    GroupBy,
    Join,
    MarkovChain,
    RandomTable,
    Scan,
    Select,
    VGOp,
    col,
    lit,
    versioned,
)


class _SimSQLLDABase(Implementation):
    platform = "simsql"
    model = "lda"

    def __init__(self, documents: list, vocabulary: int, topics: int,
                 rng: np.random.Generator, cluster_spec: ClusterSpec,
                 tracer: Tracer | None = None, alpha: float = lda.DEFAULT_ALPHA,
                 beta: float = lda.DEFAULT_BETA) -> None:
        self.documents = [np.asarray(d, dtype=int) for d in documents]
        self.vocabulary = vocabulary
        self.topics = topics
        self.rng = rng
        self.alpha = alpha
        self.beta = beta
        self.db = Database(cluster_spec, tracer=tracer, rng=rng)
        self.chain: MarkovChain | None = None

    def scale_groups(self) -> tuple[str, ...]:
        return ("data", "vocab")

    def _create_frames(self) -> None:
        self.db.create_table("topic_frame", ["topic"],
                             [(t,) for t in range(self.topics)])
        self.db.create_table("vocab", ["word"], [(w,) for w in range(self.vocabulary)])
        self.db.create_table("doc_frame", ["doc_id"],
                             [(j,) for j in range(len(self.documents))])
        self.db.create_table("hyper", ["alpha", "beta"], [(self.alpha, self.beta)])
        rows = [
            (doc_id, pos, int(word))
            for doc_id, words in enumerate(self.documents)
            for pos, word in enumerate(words)
        ]
        self.db.create_table("docs", ["doc_id", "pos", "word"], rows, scale="data")

    def iterate(self, iteration: int) -> None:
        assert self.chain is not None
        self.chain.step()

    # -- model tables shared across granularities ------------------------

    def _z_word_topic(self, i: int):
        """Plan producing (topic, word) rows from the current z."""
        raise NotImplementedError

    def _z_doc_topic(self, i: int):
        """Plan producing (doc_id, topic) rows from the current z."""
        raise NotImplementedError

    def _phi(self) -> RandomTable:
        def init(db):
            alpha_rows = project(
                cross(Scan("topic_frame"), cross(Scan("vocab"), Scan("hyper"))),
                ("topic", "topic"), ("id", "word"), ("a", "beta"),
            )
            vg = VGOp(DirichletVG(), {"alpha": alpha_rows}, group_key="topic")
            return project(vg, ("topic", "topic"), ("word", "out_id"),
                           ("prob", "prob"))

        def update(db, i):
            counts = GroupBy(self._z_word_topic(i), keys=["topic", "word"],
                             aggs=[("n", "count", None)], out_scale="vocab")
            frame = project(
                cross(Scan("topic_frame"), cross(Scan("vocab"), Scan("hyper"))),
                ("topic", "topic"), ("word", "word"), ("value", "beta"),
            )
            alpha_rows = project(
                padded_sum(project(counts, ("topic", "topic"), ("word", "word"),
                                   ("value", "n")),
                           ["topic", "word"], "value", frame, pad_value_col="value"),
                ("topic", "k0"), ("id", "k1"), ("a", "value"),
            )
            vg = VGOp(DirichletVG(), {"alpha": alpha_rows}, group_key="topic")
            return project(vg, ("topic", "topic"), ("word", "out_id"),
                           ("prob", "prob"))

        return RandomTable("phi", init, update)

    def _theta(self) -> RandomTable:
        def init(db):
            alpha_rows = project(
                cross(Scan("doc_frame"), cross(Scan("topic_frame"), Scan("hyper"))),
                ("doc_id", "doc_id"), ("id", "topic"), ("a", "alpha"),
            )
            vg = VGOp(DirichletVG(), {"alpha": alpha_rows}, group_key="doc_id",
                      out_scale="data")
            return project(vg, ("doc_id", "doc_id"), ("topic", "out_id"),
                           ("prob", "prob"))

        def update(db, i):
            counts = GroupBy(self._z_doc_topic(i), keys=["doc_id", "topic"],
                             aggs=[("n", "count", None)], out_scale="data")
            frame = project(
                cross(Scan("doc_frame"), cross(Scan("topic_frame"), Scan("hyper"))),
                ("doc_id", "doc_id"), ("topic", "topic"), ("value", "alpha"),
            )
            alpha_rows = project(
                padded_sum(project(counts, ("doc_id", "doc_id"), ("topic", "topic"),
                                   ("value", "n")),
                           ["doc_id", "topic"], "value", frame,
                           pad_value_col="value"),
                ("doc_id", "k0"), ("id", "k1"), ("a", "value"),
            )
            vg = VGOp(DirichletVG(), {"alpha": alpha_rows}, group_key="doc_id",
                      out_scale="data")
            return project(vg, ("doc_id", "doc_id"), ("topic", "out_id"),
                           ("prob", "prob"))

        return RandomTable("theta", init, update)

    # -- validation helpers ----------------------------------------------

    def current_phi(self) -> np.ndarray:
        assert self.chain is not None
        phi = np.zeros((self.topics, self.vocabulary))
        for t, w, p in self.chain.current("phi").rows:
            phi[int(t), int(w)] = p
        return phi

    def current_thetas(self) -> np.ndarray:
        assert self.chain is not None
        thetas = np.zeros((len(self.documents), self.topics))
        for j, t, p in self.chain.current("theta").rows:
            thetas[int(j), int(t)] = p
        return thetas


class SimSQLLDADocument(_SimSQLLDABase):
    variant = "document"

    def initialize(self) -> None:
        self._create_frames()
        # Chain order: z from (theta, phi) of the previous iteration,
        # then theta and phi from the fresh z.
        self.chain = MarkovChain(self.db, [
            self._doc_state(), self._theta(), self._phi(),
        ])
        self.chain.initialize()

    def _doc_state(self) -> RandomTable:
        rng = self.rng

        def init(db):
            rows = []
            for doc_id, words in enumerate(self.documents):
                for pos, word in enumerate(words):
                    rows.append((doc_id, "z", pos, int(word),
                                 float(rng.integers(self.topics))))
                theta = rng.dirichlet(np.full(self.topics, self.alpha))
                rows.extend((doc_id, "theta", t, 0, float(p))
                            for t, p in enumerate(theta))
            db.create_table("doc_state_init", ["doc_id", "kind", "a", "b", "value"],
                            rows, scale="data")
            return Scan("doc_state_init")

        def update(db, i):
            theta_rows = project(
                Scan(versioned("theta", i - 1)),
                ("doc_id", "doc_id"), ("topic", "topic"), ("p", "prob"),
            )
            vg = VGOp(
                LDADocumentVG(rng, self.topics, self.vocabulary, self.alpha), {
                    "doc": Scan("docs"),
                    "theta": theta_rows,
                    "phi": Scan(versioned("phi", i - 1)),
                }, group_key="doc_id", out_scale="data",
            )
            return vg  # (doc_id, kind, a, b, value)

        return RandomTable("doc_state", init, update)

    def _theta(self) -> RandomTable:
        # The document VG already drew each document's theta; the theta
        # table is just a selection of those rows (no extra VG query —
        # the whole point of the document granularity).
        def pick(db, i):
            rows = Select(Scan(versioned("doc_state", i)),
                          col("kind") == lit("theta"))
            return project(rows, ("doc_id", "doc_id"), ("topic", "a"),
                           ("prob", "value"))

        return RandomTable("theta", lambda db: pick(db, 0),
                           lambda db, i: pick(db, i))

    def _z_word_topic(self, i: int):
        z = Select(Scan(versioned("doc_state", i)), col("kind") == lit("z"))
        return project(z, ("topic", "value"), ("word", "b"))

    def _z_doc_topic(self, i: int):
        z = Select(Scan(versioned("doc_state", i)), col("kind") == lit("z"))
        return project(z, ("doc_id", "doc_id"), ("topic", "value"))


class SimSQLLDASuperVertex(SimSQLLDADocument):
    """Documents grouped into blocks; one VG invocation per block."""

    variant = "super-vertex"

    def __init__(self, documents, vocabulary, topics, rng, cluster_spec,
                 tracer=None, alpha=lda.DEFAULT_ALPHA, beta=lda.DEFAULT_BETA,
                 docs_per_block: int = 16) -> None:
        super().__init__(documents, vocabulary, topics, rng, cluster_spec,
                         tracer, alpha, beta)
        self.docs_per_block = docs_per_block

    def initialize(self) -> None:
        self._create_frames()
        blocks = group_items(list(range(len(self.documents))),
                             max(1, len(self.documents) // self.docs_per_block))
        self.db.create_table(
            "doc_blocks", ["doc_id", "sv_id"],
            [(d, b) for b, block in enumerate(blocks) for d in block],
            scale="data",
        )
        self.chain = MarkovChain(self.db, [
            self._doc_state(), self._theta(), self._phi(),
        ])
        self.chain.initialize()

    def _doc_state(self) -> RandomTable:
        base = super()._doc_state()

        def update(db, i):
            # Group by super vertex: the VG sees a whole block's docs
            # via a surrogate sv key joined onto the document rows.
            theta_rows = project(
                Join(Scan(versioned("theta", i - 1)), Scan("doc_blocks"),
                     predicate=col("doc_id") == col("doc_id"), out_scale="data"),
                ("sv_id", "sv_id"), ("doc_id", "doc_id"), ("topic", "topic"),
                ("p", "prob"),
            )
            doc_rows = project(
                Join(Scan("docs"), Scan("doc_blocks"),
                     predicate=col("doc_id") == col("doc_id"), out_scale="data"),
                ("sv_id", "sv_id"), ("doc_id", "doc_id"), ("pos", "pos"),
                ("word", "word"),
            )
            vg = VGOp(
                _LDABlockVG(self.rng, self.topics, self.vocabulary, self.alpha), {
                    "doc": doc_rows,
                    "theta": theta_rows,
                    "phi": Scan(versioned("phi", i - 1)),
                }, group_key="sv_id", out_scale="data",
            )
            return project(vg, ("doc_id", "doc_id"), ("kind", "kind"),
                           ("a", "a"), ("b", "b"), ("value", "value"))

        return RandomTable("doc_state", base.init, update)


class SimSQLLDAWord(_SimSQLLDABase):
    """The pure word-based LDA only SimSQL could run (Figure 4(a))."""

    variant = "word"

    def initialize(self) -> None:
        self._create_frames()
        self.chain = MarkovChain(self.db, [
            self._z(), self._theta(), self._phi(),
        ])
        self.chain.initialize()

    def _z(self) -> RandomTable:
        rng = self.rng

        def init(db):
            rows = []
            cell = 0
            for doc_id, words in enumerate(self.documents):
                for pos, word in enumerate(words):
                    rows.append((cell, doc_id, int(word), int(rng.integers(self.topics))))
                    cell += 1
            db.create_table("z_init", ["cell_id", "doc_id", "word", "topic"],
                            rows, scale="data")
            return Scan("z_init")

        def update(db, i):
            prev = Scan(versioned("z", i - 1))
            cell = project(prev, ("cell_id", "cell_id"), ("word", "word"))
            # The data-sized fan-out: theta joined to every word cell.
            theta_rows = project(
                Join(prev, Scan(versioned("theta", i - 1)),
                     predicate=col("doc_id") == col("doc_id"), out_scale="data"),
                ("cell_id", "cell_id"), ("topic", "topic"), ("p", "prob"),
            )
            vg = VGOp(
                LDAWordVG(rng, self.topics, self.vocabulary), {
                    "cell": cell, "theta": theta_rows,
                    "phi": Scan(versioned("phi", i - 1)),
                }, group_key="cell_id", out_scale="data",
            )
            # Re-attach doc/word metadata to the fresh topic draws.
            return project(
                Join(project(vg, ("cell_id", "cell_id"), ("topic", "topic")),
                     Alias(prev, "old"),
                     predicate=col("cell_id") == col("old.cell_id"),
                     out_scale="data"),
                ("cell_id", "cell_id"), ("doc_id", "old.doc_id"),
                ("word", "old.word"), ("topic", "topic"),
            )

        return RandomTable("z", init, update)

    def _z_word_topic(self, i: int):
        return project(Scan(versioned("z", i)), ("topic", "topic"), ("word", "word"))

    def _z_doc_topic(self, i: int):
        return project(Scan(versioned("z", i)), ("doc_id", "doc_id"),
                       ("topic", "topic"))


class _LDABlockVG(LDADocumentVG):
    """Block-of-documents variant of the LDA document VG."""

    name = "lda_super_vertex"
    output_columns = ("doc_id", "kind", "a", "b", "value")

    def invoke(self, rng, params):
        phi = self._cache.get(params["phi"], lambda: self._parse_phi(params["phi"]))
        docs: dict[int, list[tuple]] = {}
        for doc_id, pos, word in self._require(params, "doc"):
            docs.setdefault(int(doc_id), []).append((int(pos), int(word)))
        thetas: dict[int, list[tuple]] = {}
        for doc_id, topic, p in self._require(params, "theta"):
            thetas.setdefault(int(doc_id), []).append((int(topic), float(p)))
        out = []
        for doc_id in sorted(docs):
            rows = sorted(docs[doc_id])
            words = np.array([w for _, w in rows])
            theta = np.empty(self.topics)
            for topic, p in thetas[doc_id]:
                theta[topic] = p
            z, new_theta, _ = lda.resample_document(self.rng, words, theta, phi,
                                                    self.alpha)
            out.extend((doc_id, "z", pos, int(w), float(t))
                       for pos, (w, t) in enumerate(zip(words, z)))
            out.extend((doc_id, "theta", t, 0, float(p))
                       for t, p in enumerate(new_theta))
        return out

    def invoke_batch(self, rng, grouped):
        """Every block's documents in one batch LDA kernel call.

        Documents flatten in (group, doc_id) order — the scalar loop's
        exact sequence — so the batch kernel's interleaved per-document
        draws consume ``self.rng`` identically.
        """
        if not grouped:
            return []
        first = grouped[0][1]
        phi = self._cache.get(first["phi"], lambda: self._parse_phi(first["phi"]))
        values = []
        doc_keys = []  # (group key, doc_id, words) in scalar order
        for key, params in grouped:
            docs: dict[int, list[tuple]] = {}
            for doc_id, pos, word in self._require(params, "doc"):
                docs.setdefault(int(doc_id), []).append((int(pos), int(word)))
            thetas: dict[int, list[tuple]] = {}
            for doc_id, topic, p in self._require(params, "theta"):
                thetas.setdefault(int(doc_id), []).append((int(topic), float(p)))
            for doc_id in sorted(docs):
                rows = sorted(docs[doc_id])
                words = np.array([w for _, w in rows])
                theta = np.empty(self.topics)
                for topic, p in thetas[doc_id]:
                    theta[topic] = p
                values.append((words, theta))
                doc_keys.append((key, doc_id, words))
        updated = lda.resample_documents_batch(self.rng, values, phi, self.alpha)
        out = []
        for (key, doc_id, words), (z, new_theta) in zip(doc_keys, updated):
            out.extend(key + (doc_id, "z", pos, int(w), float(t))
                       for pos, (w, t) in enumerate(zip(words, z)))
            out.extend(key + (doc_id, "theta", t, 0, float(p))
                       for t, p in enumerate(new_theta))
        return out

    def flops_per_invocation(self, params):
        return float(len(params.get("doc", ())) * self.topics * 4)
