"""Platform x model benchmark implementations.

Every class implements :class:`repro.impls.base.Implementation`; the
registry below maps (platform, model, variant) to classes, which is what
the benchmark harness iterates over.
"""

from repro.impls.base import Implementation
from repro.impls import giraph, graphlab, simsql, spark

#: (platform, model, variant) -> implementation class.
REGISTRY: dict[tuple[str, str, str], type] = {}

for _module in (spark, simsql, graphlab, giraph):
    for _name in _module.__all__:
        _cls = getattr(_module, _name)
        REGISTRY[(_cls.platform, _cls.model, _cls.variant)] = _cls

__all__ = ["Implementation", "REGISTRY", "giraph", "graphlab", "simsql", "spark"]
