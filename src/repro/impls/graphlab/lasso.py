"""GraphLab Bayesian Lasso (paper Section 6.3, Figure 2).

Super-vertex based, as the paper's: data vertices hold (X_i, y_i)
blocks, model vertices hold the 1/tau_j^2 auxiliaries, and a center
vertex holds (beta, sigma^2).  Setup uses ``map_reduce_vertices`` twice
(Gram matrix, then X^T y over the centered response) — the paper notes
this is "a nice way to collect statistics before the simulation begins"
and it is why GraphLab's initialization takes under a minute where
Spark/SimSQL take hours.  Each iteration is two GAS rounds.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.events import DATA
from repro.cluster.machine import ClusterSpec
from repro.cluster.tracer import Tracer
from repro.graph import GASProgram, GraphLabEngine, group_rows
from repro.impls.base import Implementation
from repro.kernels import lasso
from repro.kernels.folds import fold_array_sum


class _CenterRound(GASProgram):
    """The center vertex gathers tau from the model vertices and the
    residual sum from the data vertices, then resamples beta/sigma."""

    def __init__(self, impl: "GraphLabLassoSuperVertex") -> None:
        self.impl = impl

    def gather(self, center_id, center_value, nbr_kind, nbr_id, nbr_value):
        if nbr_kind == "model":
            out = np.zeros(self.impl.p + 1)
            out[nbr_id] = nbr_value["tau2_inv"]
            return out
        beta = center_value["state"].beta
        bx, by = nbr_value["x"], nbr_value["yc"]
        residuals = by - bx @ beta
        self.impl.engine.charge(flops=2.0 * bx.size, scale=DATA, label="rss")
        out = np.zeros(self.impl.p + 1)
        out[-1] = float(residuals @ residuals)
        return out

    def sum(self, a, b):
        return a + b

    def sum_batch(self, contributions):
        # Sequential cumsum: the left fold of elementwise + bitwise.
        return fold_array_sum(contributions)

    def apply(self, center_id, center_value, total):
        impl = self.impl
        state: lasso.LassoState = center_value["state"]
        state.tau2_inv = total[: impl.p]
        rss = float(total[-1])
        state.sigma2 = lasso.sample_sigma2(impl.rng, impl.pre.n, state, rss)
        state.beta = lasso.sample_beta(impl.rng, impl.pre, state.tau2_inv,
                                       state.sigma2)
        impl.engine.charge(flops=float(impl.p**3), label="beta-solve")
        return {"state": state}


class _ModelRound(GASProgram):
    """Model vertices gather (beta_j, sigma^2) and resample 1/tau_j^2."""

    def __init__(self, impl: "GraphLabLassoSuperVertex") -> None:
        self.impl = impl

    def gather(self, center_id, center_value, nbr_kind, nbr_id, nbr_value):
        if nbr_kind != "center":
            return None
        state: lasso.LassoState = nbr_value["state"]
        return (float(state.beta[center_id]), state.sigma2)

    def sum(self, a, b):
        return a

    def sum_batch(self, contributions):
        # The fold keeps the first contribution; so does the batch.
        return contributions[0]

    def apply(self, center_id, center_value, total):
        if total is None:
            return center_value
        beta_j, sigma2 = total
        return {"tau2_inv": lasso.sample_tau2_inv_element(
            self.impl.rng, beta_j, sigma2, self.impl.lam)}


class GraphLabLassoSuperVertex(Implementation):
    platform = "graphlab"
    model = "lasso"
    variant = "super-vertex"

    def __init__(self, x: np.ndarray, y: np.ndarray, rng: np.random.Generator,
                 cluster_spec: ClusterSpec, tracer: Tracer | None = None,
                 lam: float = lasso.DEFAULT_LAM, block_points: int = 64) -> None:
        self.x = np.asarray(x, dtype=float)
        self.y = np.asarray(y, dtype=float)
        self.p = self.x.shape[1]
        self.rng = rng
        self.lam = lam
        self.block_points = block_points
        self.engine = GraphLabEngine(cluster_spec, tracer=tracer)
        self.pre: lasso.LassoPrecomputed | None = None
        self.state: lasso.LassoState | None = None

    def initialize(self) -> None:
        engine = self.engine
        n, p = self.x.shape
        blocks_x = group_rows(self.x, max(1, n // self.block_points))
        blocks_y = group_rows(self.y.reshape(-1, 1), max(1, n // self.block_points))
        engine.add_vertex_kind("data", scale=DATA, edge_scale="sv")
        engine.add_vertex_kind("model")
        engine.add_vertex_kind("center")
        y_mean = float(self.y.mean())
        engine.add_vertices("data", {
            b: {"x": bx, "yc": by.ravel() - y_mean}
            for b, (bx, by) in enumerate(zip(blocks_x, blocks_y))
        })
        engine.add_vertices("model", {j: {"tau2_inv": 1.0} for j in range(p)})
        engine.add_vertices("center", {0: {"state": lasso.initial_state(self.rng, p)}})
        engine.add_bipartite_edges("data", "center")
        engine.add_bipartite_edges("model", "center")

        # map_reduce_vertices: local X_i^T X_i per super vertex, summed.
        # The local Gram products are BLAS matrix multiplies; the
        # effective per-FLOP rate is far below scalar C++ steps, so the
        # hint is scaled down accordingly.
        gram = engine.map_reduce(
            "data", lambda vid, v: v["x"].T @ v["x"], lambda a, b: a + b,
            flops_per_vertex=float(self.block_points * p * p) / 8.0, label="gram",
        )
        xty = engine.map_reduce(
            "data", lambda vid, v: v["x"].T @ v["yc"], lambda a, b: a + b,
            flops_per_vertex=float(self.block_points * p), label="xty",
        )
        self.pre = lasso.LassoPrecomputed(xtx=gram, xty=xty, y_mean=y_mean, n=n)
        self.state = self.engine.vertex_value("center", 0)["state"]

    def iterate(self, iteration: int) -> None:
        self.engine.gas(_ModelRound(self), center_kind="model")
        self.engine.gas(_CenterRound(self), center_kind="center")
        self.state = self.engine.vertex_value("center", 0)["state"]
