"""GraphLab GMM (paper Sections 5.3 and 5.6, Figure 1).

``GraphLabGMM`` is the paper's "pure" implementation: one data vertex
per point in a complete bipartite graph with the cluster vertices (plus
the mixture-proportion vertex connected to every data vertex).  Each
Gibbs iteration is two gather-apply-scatter rounds:

* data vertices gather the model — the engine materializes one model
  view per (data vertex, model vertex) edge, which at paper scale is
  one ~50 KB copy per data point and the reason this code **Fails** at
  every scale the paper tried;
* model vertices gather the data triples and resample.

``GraphLabGMMSuperVertex`` is the Section 5.6 fix: hundreds of
thousands of points per vertex (the paper used 8,000 super vertices at
100 machines), one model copy per super vertex, and the heavy
aggregation pushed down into the super vertices.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.events import DATA
from repro.cluster.machine import ClusterSpec
from repro.cluster.tracer import Tracer
from repro.graph import GASProgram, GraphLabEngine, group_rows
from repro.impls.base import Implementation
from repro.kernels import gmm
from repro.stats import Categorical, MultivariateNormal, sample_categorical_rows


class _GatherModel(GASProgram):
    """Round 1: data vertices pull the model and resample memberships."""

    def __init__(self, impl: "GraphLabGMM") -> None:
        self.impl = impl

    def gather(self, center_id, center_value, nbr_kind, nbr_id, nbr_value):
        if nbr_kind == "cluster":
            return [(nbr_id, nbr_value["pi"], nbr_value["mu"], nbr_value["dist"])]
        return []  # the mixture vertex's pi rides with the cluster views

    def sum(self, a, b):
        return a + b

    def sum_batch(self, contributions):
        # List concatenation: the left fold of + in one pass.
        out = []
        for contribution in contributions:
            out.extend(contribution)
        return out

    def apply(self, center_id, center_value, total):
        return self.impl.apply_data(center_value, total)


class _GatherTriples(GASProgram):
    """Round 2: cluster vertices pull <c, x, scatter> views, resample."""

    def __init__(self, impl: "GraphLabGMM") -> None:
        self.impl = impl

    def gather(self, center_id, center_value, nbr_kind, nbr_id, nbr_value):
        return self.impl.data_view(center_id, nbr_value)

    def sum(self, a, b):
        return gmm.add_triples(a, b)

    def sum_batch(self, contributions):
        return gmm.add_triples_batch(contributions)

    def apply(self, center_id, center_value, total):
        return self.impl.apply_cluster(center_id, center_value, total)


class _GatherCounts(GASProgram):
    """Round 3: the mixture-proportion vertex pulls membership counts."""

    def __init__(self, impl: "GraphLabGMM") -> None:
        self.impl = impl

    def gather(self, center_id, center_value, nbr_kind, nbr_id, nbr_value):
        return self.impl.count_view(nbr_value)

    def sum(self, a, b):
        return a + b

    def sum_batch(self, contributions):
        return np.cumsum(np.stack(contributions), axis=0)[-1]

    def apply(self, center_id, center_value, total):
        counts = total if total is not None else np.zeros(self.impl.clusters)
        pi = gmm.sample_pi(self.impl.rng, self.impl.prior, counts)
        for k in range(self.impl.clusters):
            self.impl.engine.vertex_value("cluster", k)["pi"] = float(pi[k])
        return {"pi": pi}


class GraphLabGMM(Implementation):
    platform = "graphlab"
    model = "gmm"
    variant = "initial"

    def __init__(self, points: np.ndarray, clusters: int, rng: np.random.Generator,
                 cluster_spec: ClusterSpec, tracer: Tracer | None = None) -> None:
        self.points = np.asarray(points, dtype=float)
        self.clusters = clusters
        self.rng = rng
        self.engine = GraphLabEngine(cluster_spec, tracer=tracer)
        self.prior: gmm.GMMPrior | None = None
        self.state: gmm.GMMState | None = None

    def initialize(self) -> None:
        engine, rng = self.engine, self.rng
        n, d = self.points.shape
        engine.add_vertex_kind("data", scale=DATA)
        engine.add_vertex_kind("cluster")
        engine.add_vertex_kind("mixture")
        self._load_data()
        engine.add_bipartite_edges("data", "cluster")
        engine.add_bipartite_edges("data", "mixture")

        total = engine.map_reduce(
            "data", self._sum_map, lambda a, b: (a[0] + b[0], a[1] + b[1]),
            flops_per_vertex=float(d), label="hyper-mean",
        )
        hyper_mean = total[0] / total[1]
        self._hyper_mean = hyper_mean
        sq = engine.map_reduce(
            "data", self._sq_map, lambda a, b: a + b,
            flops_per_vertex=2.0 * d, label="hyper-var",
        )
        variances = sq / n
        self.prior = gmm.GMMPrior(
            mu0=hyper_mean, lambda0=np.diag(1.0 / variances), psi=np.diag(variances),
            v=gmm.df_prior(d), alpha=np.full(self.clusters, gmm.DEFAULT_ALPHA),
        )
        self.state = gmm.initial_state(rng, self.prior)
        engine.add_vertices("cluster", {
            k: {"mu": self.state.means[k], "sigma": self.state.covariances[k],
                "pi": float(self.state.pi[k]),
                "dist": MultivariateNormal(self.state.means[k],
                                           self.state.covariances[k])}
            for k in range(self.clusters)
        })
        engine.add_vertices("mixture", {0: {"pi": self.state.pi.copy()}})

    def iterate(self, iteration: int) -> None:
        self.engine.gas(_GatherModel(self), center_kind="data")
        self.engine.gas(_GatherTriples(self), center_kind="cluster")
        self.engine.gas(_GatherCounts(self), center_kind="mixture")
        self._refresh_state()

    # -- per-granularity hooks ----------------------------------------------

    def _load_data(self) -> None:
        self.engine.add_vertices("data", {
            j: {"x": self.points[j], "c": 0, "triple": None}
            for j in range(self.points.shape[0])
        })

    @staticmethod
    def _sum_map(vid, value):
        return (value["x"], 1)

    def _sq_map(self, vid, value):
        return (value["x"] - self._hyper_mean) ** 2

    def apply_data(self, value, views):
        """Resample one data vertex's membership from the gathered model."""
        views = sorted(views or [])
        x = value["x"]
        weights = gmm.scalar_membership_weights(
            x, [np.log(max(pi, 1e-300)) for _, pi, _, _ in views],
            [dist for _, _, _, dist in views],
        )
        k = int(Categorical(weights).sample(self.rng))
        d = x.size
        self.engine.charge(flops=self.clusters * (3.0 * d * d + 4.0 * d) + d * d,
                           scale=DATA, label="membership")
        return {"x": x, "c": k, "triple": gmm.membership_triple(x, views[k][2])}

    def data_view(self, cluster_id, data_value):
        """The triple a cluster vertex gathers from one data vertex."""
        if data_value["c"] != cluster_id or data_value["triple"] is None:
            return None
        return data_value["triple"]

    def count_view(self, data_value):
        counts = np.zeros(self.clusters)
        counts[data_value["c"]] = 1.0
        return counts

    def apply_cluster(self, cluster_id, value, total):
        d = self.prior.dim
        count, sum_x, scatter = total if total is not None else (
            0.0, np.zeros(d), np.zeros((d, d)))
        mu, sigma = gmm.update_cluster(self.rng, self.prior, value["sigma"],
                                       count, sum_x, scatter)
        self.engine.charge(flops=6.0 * d**3, label="cluster-update")
        return {"mu": mu, "sigma": sigma, "pi": value["pi"],
                "dist": MultivariateNormal(mu, sigma)}

    def _refresh_state(self) -> None:
        assert self.state is not None
        for k in range(self.clusters):
            vertex = self.engine.vertex_value("cluster", k)
            self.state.means[k] = vertex["mu"]
            self.state.covariances[k] = vertex["sigma"]
        self.state.pi = self.engine.vertex_value("mixture", 0)["pi"].copy()


class GraphLabGMMSuperVertex(GraphLabGMM):
    """Section 5.6: blocks of points per vertex, one model copy each."""

    variant = "super-vertex"

    def __init__(self, points, clusters, rng, cluster_spec, tracer=None,
                 block_points: int = 64) -> None:
        super().__init__(points, clusters, rng, cluster_spec, tracer)
        self.block_points = block_points

    def scale_groups(self) -> tuple[str, ...]:
        return ("data", "sv")

    def _load_data(self) -> None:
        n = self.points.shape[0]
        blocks = group_rows(self.points, max(1, n // self.block_points))
        self.engine.kinds["data"].edge_scale = "sv"
        self.engine.add_vertices("data", {
            b: {"block": block, "labels": None, "stats": None}
            for b, block in enumerate(blocks)
        })

    @staticmethod
    def _sum_map(vid, value):
        return (value["block"].sum(axis=0), len(value["block"]))

    def _sq_map(self, vid, value):
        return ((value["block"] - self._hyper_mean) ** 2).sum(axis=0)

    def apply_data(self, value, views):
        views = sorted(views or [])
        block = value["block"]
        state = gmm.GMMState(
            pi=np.array([v[1] for v in views]),
            means=np.vstack([v[2] for v in views]),
            covariances=np.stack([v[3].cov for v in views]),
        )
        labels = sample_categorical_rows(self.rng,
                                         gmm.membership_weights(block, state))
        stats = gmm.sufficient_statistics(block, labels, state)
        d = block.shape[1]
        self.engine.charge(
            records=len(block) * self.clusters * 3.0,
            flops=len(block) * (self.clusters * (3.0 * d * d + 4.0 * d) + d * d),
            scale=DATA, label="block-membership",
        )
        return {"block": block, "labels": labels, "stats": stats}

    def data_view(self, cluster_id, data_value):
        stats = data_value["stats"]
        if stats is None or stats.counts[cluster_id] == 0:
            return None
        return (stats.counts[cluster_id], stats.sums[cluster_id],
                stats.scatters[cluster_id])

    def count_view(self, data_value):
        stats = data_value["stats"]
        return stats.counts.copy() if stats is not None else np.zeros(self.clusters)
