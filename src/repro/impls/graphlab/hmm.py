"""GraphLab HMM, super-vertex based (paper Section 7.3, Figure 3(b)).

Two vertex kinds: data super vertices (blocks of documents with their
state-assignment vectors) and one state vertex per hidden state holding
(Psi_s, delta_s); the graph is complete bipartite.  Each iteration:

* data vertices gather every state vertex's (Psi_s, delta_s) rows and
  resample their documents' states;
* state vertices gather the per-super-vertex count statistics f/g/h —
  the ~10 MB-per-super-vertex views whose fan-in materialization is
  what kills GraphLab's HMM beyond 5 machines (Section 7.6).

delta_0 is owned by state vertex 0 (a small asymmetry standing in for
GraphLab's global-value facilities).
"""

from __future__ import annotations

import numpy as np

from repro import fastpath
from repro.cluster.events import DATA
from repro.cluster.machine import ClusterSpec
from repro.cluster.tracer import Tracer
from repro.graph import GASProgram, GraphLabEngine, group_items
from repro.impls.base import Implementation, declare_scale_limit
from repro.kernels import hmm
from repro.kernels.folds import fold_array_sum


class _ResampleStates(GASProgram):
    def __init__(self, impl: "GraphLabHMMSuperVertex") -> None:
        self.impl = impl

    def gather(self, center_id, center_value, nbr_kind, nbr_id, nbr_value):
        return [(nbr_id, nbr_value["psi"], nbr_value["delta"],
                 nbr_value.get("delta0"))]

    def sum(self, a, b):
        return a + b

    def sum_batch(self, contributions):
        # List concatenation: the left fold of + in one pass.
        out = []
        for contribution in contributions:
            out.extend(contribution)
        return out

    def apply(self, center_id, center_value, total):
        impl = self.impl
        rows = sorted(total or [])
        model = hmm.HMMState(
            delta0=next(r[3] for r in rows if r[3] is not None),
            delta=np.vstack([r[2] for r in rows]),
            psi=np.vstack([r[1] for r in rows]),
        )
        values = list(zip(center_value["words"], center_value["states"]))
        if fastpath.enabled() and len(values) > 1:
            updated_list = hmm.resample_documents_batch(impl.rng, values, model,
                                                        impl.iteration)
        else:
            updated_list = [
                hmm.resample_document_states(impl.rng, words, states, model,
                                             impl.iteration)
                for words, states in values
            ]
        counts = hmm.HMMCounts.zeros(impl.states, impl.vocabulary)
        total_words = 0
        for slot, (words, _) in enumerate(values):
            updated = updated_list[slot]
            center_value["states"][slot] = updated
            counts = counts.merge(
                hmm.document_counts(words, updated, impl.states, impl.vocabulary))
            total_words += len(words)
        impl.engine.charge(records=float(total_words * 2),
                           flops=float(total_words * impl.states * 4), scale=DATA,
                           label="state-resample")
        center_value["counts"] = counts
        return center_value


class _UpdateModel(GASProgram):
    def __init__(self, impl: "GraphLabHMMSuperVertex") -> None:
        self.impl = impl

    def gather(self, center_id, center_value, nbr_kind, nbr_id, nbr_value):
        counts: hmm.HMMCounts = nbr_value.get("counts")
        if counts is None:
            return None
        # Each state vertex gathers its own slice of every super
        # vertex's ~(W + K + K)-float statistics view.
        return (counts.emissions[center_id], counts.transitions[center_id],
                counts.starts)

    def sum(self, a, b):
        return (a[0] + b[0], a[1] + b[1], a[2] + b[2])

    def sum_batch(self, contributions):
        # Columnwise cumsum folds: each equals the sequential left fold.
        return (fold_array_sum([c[0] for c in contributions]),
                fold_array_sum([c[1] for c in contributions]),
                fold_array_sum([c[2] for c in contributions]))

    def apply(self, center_id, center_value, total):
        impl = self.impl
        if total is None:
            return center_value
        emissions, transitions, starts = total
        center_value["psi"] = hmm.resample_emission_row(impl.rng, impl.beta,
                                                        emissions)
        center_value["delta"] = hmm.resample_transition_row(impl.rng, impl.alpha,
                                                            transitions)
        if center_value.get("delta0") is not None:
            center_value["delta0"] = hmm.resample_delta0(impl.rng, impl.alpha,
                                                         starts)
        impl.engine.charge(flops=float(impl.vocabulary * 20), label="model-update")
        return center_value


class GraphLabHMMSuperVertex(Implementation):
    platform = "graphlab"
    model = "hmm"
    variant = "super-vertex"

    def __init__(self, documents: list, vocabulary: int, states: int,
                 rng: np.random.Generator, cluster_spec: ClusterSpec,
                 tracer: Tracer | None = None, alpha: float = hmm.DEFAULT_ALPHA,
                 beta: float = hmm.DEFAULT_BETA, docs_per_block: int = 16) -> None:
        self.documents = [np.asarray(d, dtype=int) for d in documents]
        self.vocabulary = vocabulary
        self.states = states
        self.rng = rng
        self.alpha = alpha
        self.beta = beta
        self.docs_per_block = docs_per_block
        self.engine = GraphLabEngine(cluster_spec, tracer=tracer)
        self.model: hmm.HMMState | None = None
        self.iteration = 0

    def scale_groups(self) -> tuple[str, ...]:
        return ("data", "sv")

    def initialize(self) -> None:
        engine, rng = self.engine, self.rng
        engine.add_vertex_kind("data", scale=DATA, edge_scale="sv")
        engine.add_vertex_kind("state")
        blocks = group_items(list(range(len(self.documents))),
                             max(1, len(self.documents) // self.docs_per_block))
        # transform_vertices-style initialization of the assignments.
        engine.add_vertices("data", {
            b: {"docs": block,
                "words": [self.documents[d] for d in block],
                "states": [rng.integers(self.states, size=len(self.documents[d]))
                           for d in block],
                "counts": None}
            for b, block in enumerate(blocks)
        })
        self.model = hmm.initial_model(rng, self.states, self.vocabulary,
                                       self.alpha, self.beta)
        engine.add_vertices("state", {
            s: {"psi": self.model.psi[s], "delta": self.model.delta[s],
                "delta0": self.model.delta0 if s == 0 else None}
            for s in range(self.states)
        })
        engine.add_bipartite_edges("data", "state")

    def iterate(self, iteration: int) -> None:
        # Section 7.6: the ~10 MB-per-super-vertex statistics views
        # materializing at the state vertices kill this code beyond five
        # machines; the exact boundary is declared.
        declare_scale_limit(self.engine.tracer, self.engine.cluster, 0.6,
                            "graphlab-hmm-statistics-fan-in", fail_at=20)
        self.iteration = iteration
        self.engine.gas(_ResampleStates(self), center_kind="data")
        self.engine.gas(_UpdateModel(self), center_kind="state")
        self._refresh_model()

    def _refresh_model(self) -> None:
        assert self.model is not None
        for s in range(self.states):
            vertex = self.engine.vertex_value("state", s)
            self.model.psi[s] = vertex["psi"]
            self.model.delta[s] = vertex["delta"]
        self.model.delta0 = self.engine.vertex_value("state", 0)["delta0"]

    def assignments(self) -> list:
        out: dict[int, np.ndarray] = {}
        for vertex in self.engine.kinds["data"].values.values():
            for doc_id, states in zip(vertex["docs"], vertex["states"]):
                out[doc_id] = states
        return [out[d] for d in range(len(self.documents))]
