"""GraphLab Gaussian imputation, super-vertex based (paper Section 9,
Figure 5): the GraphLab GMM rounds with the conditional-normal
imputation performed inside the super vertices' apply phase.
"""

from __future__ import annotations

import numpy as np

from repro import fastpath
from repro.cluster.events import DATA
from repro.cluster.machine import ClusterSpec
from repro.cluster.tracer import Tracer
from repro.graph import group_rows
from repro.impls.graphlab.gmm import GraphLabGMMSuperVertex
from repro.kernels import gmm
from repro.kernels.imputation import (
    impute_points,
    impute_points_batch,
    sample_marginal_memberships,
)


class GraphLabImputationSuperVertex(GraphLabGMMSuperVertex):
    platform = "graphlab"
    model = "imputation"
    variant = "super-vertex"

    def __init__(self, censored_points: np.ndarray, mask: np.ndarray, clusters: int,
                 rng: np.random.Generator, cluster_spec: ClusterSpec,
                 tracer: Tracer | None = None, block_points: int = 64) -> None:
        censored_points = np.asarray(censored_points, dtype=float)
        self.mask = np.asarray(mask, dtype=bool)
        column_means = np.nanmean(censored_points, axis=0)
        completed = censored_points.copy()
        fill = np.broadcast_to(column_means, completed.shape)
        completed[self.mask] = fill[self.mask]
        super().__init__(completed, clusters, rng, cluster_spec, tracer,
                         block_points=block_points)

    def _load_data(self) -> None:
        n = self.points.shape[0]
        groups = max(1, n // self.block_points)
        blocks = group_rows(self.points, groups)
        masks = group_rows(self.mask, groups)
        self.engine.kinds["data"].edge_scale = "sv"
        self.engine.add_vertices("data", {
            b: {"block": block, "mask": mask, "labels": None, "stats": None}
            for b, (block, mask) in enumerate(zip(blocks, masks))
        })

    def apply_data(self, value, views):
        views = sorted(views or [])
        block, mask = value["block"], value["mask"]
        state = gmm.GMMState(
            pi=np.array([v[1] for v in views]),
            means=np.vstack([v[2] for v in views]),
            covariances=np.stack([v[3].cov for v in views]),
        )
        labels = sample_marginal_memberships(self.rng, block, mask, state)
        impute = impute_points_batch if fastpath.enabled() else impute_points
        completed = impute(self.rng, block, mask, labels, state)
        stats = gmm.sufficient_statistics(completed, labels, state)
        d = block.shape[1]
        self.engine.charge(
            records=len(block) * self.clusters * 3.0,
            flops=len(block) * self.clusters * (6.0 * d**3 / 8.0 + 3.0 * d * d),
            scale=DATA, label="block-impute",
        )
        return {"block": completed, "mask": mask, "labels": labels, "stats": stats}

    def completed_points(self) -> np.ndarray:
        data = self.engine.kinds["data"]
        return np.vstack([data.values[b]["block"] for b in sorted(data.values)])
