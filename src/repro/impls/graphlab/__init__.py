"""GraphLab implementations of the five benchmark models."""

from repro.impls.graphlab.gmm import GraphLabGMM, GraphLabGMMSuperVertex
from repro.impls.graphlab.hmm import GraphLabHMMSuperVertex
from repro.impls.graphlab.imputation import GraphLabImputationSuperVertex
from repro.impls.graphlab.lasso import GraphLabLassoSuperVertex
from repro.impls.graphlab.lda import GraphLabLDASuperVertex

__all__ = [
    "GraphLabGMM",
    "GraphLabGMMSuperVertex",
    "GraphLabHMMSuperVertex",
    "GraphLabImputationSuperVertex",
    "GraphLabLDASuperVertex",
    "GraphLabLassoSuperVertex",
]
