"""GraphLab LDA, super-vertex based (paper Section 8, Figure 4(b)).

Identical structure to the GraphLab HMM, with topic vertices instead of
state vertices and a model five times larger — the per-super-vertex
statistics views are topic-by-vocabulary, and their fan-in
materialization is why the paper's GraphLab LDA only ran on five
machines (39:27 per iteration) and failed beyond.
"""

from __future__ import annotations

import numpy as np

from repro import fastpath
from repro.cluster.events import DATA
from repro.cluster.machine import ClusterSpec
from repro.cluster.tracer import Tracer
from repro.graph import GASProgram, GraphLabEngine, group_items
from repro.impls.base import Implementation, declare_scale_limit
from repro.kernels import lda
from repro.kernels.folds import fold_array_sum


class _ResampleTopics(GASProgram):
    def __init__(self, impl: "GraphLabLDASuperVertex") -> None:
        self.impl = impl

    def gather(self, center_id, center_value, nbr_kind, nbr_id, nbr_value):
        return [(nbr_id, nbr_value["phi"])]

    def sum(self, a, b):
        return a + b

    def sum_batch(self, contributions):
        # List concatenation: the left fold of + in one pass.
        out = []
        for contribution in contributions:
            out.extend(contribution)
        return out

    def apply(self, center_id, center_value, total):
        impl = self.impl
        rows = sorted(total or [])
        phi = np.vstack([row for _, row in rows])
        totals = np.zeros((impl.topics, impl.vocabulary))
        total_words = 0
        values = list(zip(center_value["words"], center_value["thetas"]))
        if fastpath.enabled() and len(values) > 1:
            resampled = lda.resample_documents_batch(impl.rng, values, phi,
                                                     impl.alpha)
        else:
            resampled = [
                lda.resample_document(impl.rng, words, theta, phi,
                                      impl.alpha)[:2]
                for words, theta in values
            ]
        for slot, ((words, _), (z, new_theta)) in enumerate(
                zip(values, resampled)):
            center_value["thetas"][slot] = new_theta
            np.add.at(totals, (z, words), 1.0)
            total_words += len(words)
        impl.engine.charge(records=float(total_words * 3),
                           flops=float(total_words * impl.topics * 4), scale=DATA,
                           label="topic-resample")
        center_value["counts"] = totals
        return center_value


class _UpdatePhi(GASProgram):
    def __init__(self, impl: "GraphLabLDASuperVertex") -> None:
        self.impl = impl

    def gather(self, center_id, center_value, nbr_kind, nbr_id, nbr_value):
        counts = nbr_value.get("counts")
        if counts is None:
            return None
        return counts[center_id]

    def sum(self, a, b):
        return a + b

    def sum_batch(self, contributions):
        return fold_array_sum(contributions)

    def apply(self, center_id, center_value, total):
        impl = self.impl
        if total is None:
            return center_value
        center_value["phi"] = lda.resample_phi_row(impl.rng, impl.beta, total)
        impl.engine.charge(flops=float(impl.vocabulary * 20), label="phi-update")
        return center_value


class GraphLabLDASuperVertex(Implementation):
    platform = "graphlab"
    model = "lda"
    variant = "super-vertex"

    def __init__(self, documents: list, vocabulary: int, topics: int,
                 rng: np.random.Generator, cluster_spec: ClusterSpec,
                 tracer: Tracer | None = None, alpha: float = lda.DEFAULT_ALPHA,
                 beta: float = lda.DEFAULT_BETA, docs_per_block: int = 16) -> None:
        self.documents = [np.asarray(d, dtype=int) for d in documents]
        self.vocabulary = vocabulary
        self.topics = topics
        self.rng = rng
        self.alpha = alpha
        self.beta = beta
        self.docs_per_block = docs_per_block
        self.engine = GraphLabEngine(cluster_spec, tracer=tracer)
        self.phi: np.ndarray | None = None

    def scale_groups(self) -> tuple[str, ...]:
        return ("data", "sv")

    def initialize(self) -> None:
        engine, rng = self.engine, self.rng
        engine.add_vertex_kind("data", scale=DATA, edge_scale="sv")
        engine.add_vertex_kind("topic")
        thetas = lda.initial_thetas(rng, len(self.documents), self.topics, self.alpha)
        blocks = group_items(list(range(len(self.documents))),
                             max(1, len(self.documents) // self.docs_per_block))
        engine.add_vertices("data", {
            b: {"docs": block,
                "words": [self.documents[d] for d in block],
                "thetas": [thetas[d] for d in block],
                "counts": None}
            for b, block in enumerate(blocks)
        })
        self.phi = lda.initial_phi(rng, self.topics, self.vocabulary, self.beta)
        engine.add_vertices("topic", {
            t: {"phi": self.phi[t]} for t in range(self.topics)
        })
        engine.add_bipartite_edges("data", "topic")

    def iterate(self, iteration: int) -> None:
        # Like the GraphLab HMM but with a five-times-larger model: the
        # paper ran it only on five machines (Section 8.2).
        declare_scale_limit(self.engine.tracer, self.engine.cluster, 0.6,
                            "graphlab-lda-statistics-fan-in", fail_at=20)
        self.engine.gas(_ResampleTopics(self), center_kind="data")
        self.engine.gas(_UpdatePhi(self), center_kind="topic")
        for t in range(self.topics):
            self.phi[t] = self.engine.vertex_value("topic", t)["phi"]

    def thetas(self) -> np.ndarray:
        out: dict[int, np.ndarray] = {}
        for vertex in self.engine.kinds["data"].values.values():
            for doc_id, theta in zip(vertex["docs"], vertex["thetas"]):
                out[doc_id] = theta
        return np.vstack([out[d] for d in range(len(self.documents))])
