"""Common interface for the platform x model benchmark implementations.

The benchmark runner drives every implementation identically:

    with tracer.init_phase():
        impl.initialize()
    for i in range(iterations):
        with tracer.iteration_phase(i):
            impl.iterate(i)

Implementations never open tracer phases themselves — they just execute
on their engine, which emits cost events into whatever phase the runner
has open.  ``scale_groups()`` names the scale axes the implementation's
events use, so the runner knows which factors it must supply.
"""

from __future__ import annotations

import abc

from repro.cluster.events import Site


class Implementation(abc.ABC):
    """One (platform, model, variant) benchmark code."""

    #: Platform name matching a key of PLATFORM_PROFILES.
    platform: str = ""
    #: Model name: gmm | lasso | hmm | lda | imputation.
    model: str = ""
    #: Granularity variant: e.g. "initial", "super-vertex", "word",
    #: "document", "java".
    variant: str = "initial"

    @abc.abstractmethod
    def initialize(self) -> None:
        """One-time setup: load data, compute hyperparameters, draw the
        chain's starting state (the parenthesized column of the tables)."""

    @abc.abstractmethod
    def iterate(self, iteration: int) -> None:
        """Run one MCMC iteration."""

    def scale_groups(self) -> tuple[str, ...]:
        """Scale-group labels this implementation's events use
        (beyond FIXED); the runner must supply a factor for each."""
        return ("data",)

    @property
    def label(self) -> str:
        return f"{self.platform}/{self.model}/{self.variant}"


def declare_scale_limit(tracer, cluster, headroom_fraction: float,
                        label: str, fail_at: int = 100) -> None:
    """Declare an observed (not derived) scale limit.

    Several of the paper's Fail entries — Spark's text models at 100
    machines, Giraph's LDA at 100, GraphLab's HMM/LDA beyond five — are
    reported without an identifiable mechanism ("we could still not get
    Spark to run the LDA inference algorithm on 100 machines"; "a lot of
    tuning").  For those cells the implementation *declares* the
    observed limit: a resident working set that grows quadratically with
    the cluster and reaches ``headroom_fraction`` of machine RAM at
    ``fail_at`` machines.  One cluster-size step below the boundary the
    term is small, so it reproduces the failure boundary the paper
    measured without touching the passing cells.  EXPERIMENTS.md lists
    every use.
    """
    scale = (cluster.machines / fail_at) ** 2
    tracer.materialize(
        bytes=headroom_fraction * cluster.machine.ram_bytes * scale,
        scale="fixed", site=Site.MACHINE,
        label=f"declared-scale-limit:{label}",
    )
