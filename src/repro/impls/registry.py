"""Benchmark-cell registry: (platform, model, variant) -> factory.

:data:`repro.impls.REGISTRY` maps every exported
:class:`~repro.impls.base.Implementation` subclass to its
``(platform, model, variant)`` key.  This module is the bench harness's
access path on top of that table: :func:`cell` resolves a key to its
class with a descriptive error, and :func:`data_factory` builds the
``factory(cluster_spec, tracer) -> Implementation`` callable that
``experiments``, ``wallclock`` and ``faultsweep`` consume.

Every implementation constructor follows the shared shape

    cls(*data_args, rng, cluster_spec, tracer, **kwargs)

so one generic factory serves all cells.  The RNG is constructed
*inside* the factory body — the wall-clock bench calls each factory
once per repeat, and every run must see the same fresh stream.
"""

from __future__ import annotations

from typing import Callable

from repro.cluster.machine import ClusterSpec
from repro.cluster.tracer import Tracer
from repro.impls import REGISTRY
from repro.impls.base import Implementation
from repro.stats import make_rng


def cells() -> list[tuple[str, str, str]]:
    """All registered (platform, model, variant) keys, sorted."""
    return sorted(REGISTRY)


def cell(platform: str, model: str, variant: str = "initial") -> type:
    """The implementation class registered for one benchmark cell."""
    try:
        return REGISTRY[(platform, model, variant)]
    except KeyError:
        known = ", ".join("/".join(key) for key in cells())
        raise KeyError(
            f"no implementation registered for cell "
            f"{platform}/{model}/{variant}; known cells: {known}"
        ) from None


class BoundFactory:
    """A cell's data bound onto a ``(cluster_spec, tracer)`` factory.

    Deliberately a class, not a closure: instances pickle (the class by
    qualified name, the data arrays by value), so a bound cell can cross
    a process boundary into a ``repro.bench.pool`` worker.  The resolved
    implementation class is exposed as ``.cls`` so callers can report
    source-line counts without re-resolving.
    """

    __slots__ = ("cls", "data", "seed", "rng_maker", "kwargs")

    def __init__(self, cls: type, data: tuple, seed: int,
                 rng_maker: Callable, kwargs: dict) -> None:
        self.cls = cls
        self.data = data
        self.seed = seed
        self.rng_maker = rng_maker
        self.kwargs = kwargs

    def __call__(self, cluster_spec: ClusterSpec, tracer: Tracer) -> Implementation:
        return self.cls(*self.data, self.rng_maker(self.seed),
                        cluster_spec, tracer, **self.kwargs)

    def __repr__(self) -> str:
        return (f"BoundFactory({self.cls.__name__}, seed={self.seed}, "
                f"{len(self.data)} data args)")


def data_factory(platform: str, model: str, variant: str, *data,
                 seed: int, rng_maker: Callable = make_rng,
                 **kwargs) -> BoundFactory:
    """Bind one cell's data onto a ``(cluster_spec, tracer)`` factory.

    ``data`` is passed through positionally (points/documents plus any
    model sizes); ``kwargs`` reach the constructor unchanged.
    """
    return BoundFactory(cell(platform, model, variant), data, seed,
                        rng_maker, kwargs)


def coverage_workloads(seed: int = 20140622) -> dict[str, tuple]:
    """Tiny per-model data args, just big enough that every engine's
    batch sites see multi-record populations."""
    from repro.workloads import (
        censor_beta_coin,
        generate_gmm_data,
        generate_lasso_data,
        newsgroup_style_corpus,
    )

    rng = make_rng(seed)
    gmm = generate_gmm_data(rng, 48, dim=3, clusters=2)
    lasso = generate_lasso_data(rng, 30, p=4)
    corpus = newsgroup_style_corpus(rng, 6, vocabulary=40)
    censored = censor_beta_coin(
        rng, generate_gmm_data(rng, 32, dim=3, clusters=2).points)
    return {
        "gmm": (gmm.points, 2),
        "lasso": (lasso.x, lasso.y),
        "hmm": (corpus.documents, 40, 3),
        "lda": (corpus.documents, 40, 3),
        "imputation": (censored.points, censored.mask, 2),
    }


def batch_coverage(machines: int = 3, seed: int = 20140622,
                   iterations: int = 2) -> dict:
    """Execute every registered cell with the fast path on and report
    which batch/decline sites fired.

    The report is *computed*, never hand-counted: each cell runs on a
    tiny workload under ``fastpath.fast_path(True)`` and the per-site
    counters (:func:`repro.fastpath.counters`) are read back.  A cell
    counts as covered when at least one batch site fired or an explicit
    decline guard recorded itself — silence means the cell never reached
    a fast path at all.
    """
    from repro import fastpath

    data = coverage_workloads(seed)
    report: dict[str, dict] = {}
    for platform, model, variant in cells():
        factory = data_factory(platform, model, variant, *data[model],
                               seed=seed)
        fastpath.reset_counters()
        with fastpath.fast_path(True):
            tracer = Tracer()
            impl = factory(ClusterSpec(machines=machines), tracer)
            with tracer.phase("init"):
                impl.initialize()
            for i in range(iterations):
                with tracer.phase(f"iteration-{i}"):
                    impl.iterate(i)
        counts = fastpath.counters()
        report["/".join((platform, model, variant))] = {
            "batch_sites": sorted(counts["batch"]),
            "decline_sites": sorted(counts["decline"]),
            "covered": bool(counts["batch"] or counts["decline"]),
        }
    return {
        "cells": report,
        "covered": sum(1 for r in report.values() if r["covered"]),
        "total": len(report),
    }


__all__ = ["BoundFactory", "batch_coverage", "cell", "cells",
           "coverage_workloads", "data_factory"]
