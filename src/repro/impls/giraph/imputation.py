"""Giraph Gaussian imputation (paper Section 9, Figure 5).

The Giraph GMM message dance plus the per-point imputation step inside
the data vertices' compute: each data vertex keeps its censoring mask,
samples its membership from the observed coordinates, redraws the
censored ones from the conditional normal, and ships the completed
statistics triple.
"""

from __future__ import annotations

import numpy as np

from repro import fastpath
from repro.cluster.machine import ClusterSpec
from repro.cluster.tracer import Tracer
from repro.impls.giraph.gmm import GiraphGMM
from repro.kernels import gmm
from repro.kernels.imputation import (
    impute_point,
    marginal_membership_weights,
    scalar_marginal_weights,
)
from repro.stats import Categorical
from repro.stats.mvn import ROW_STABLE_MAX_DIM


class GiraphImputation(GiraphGMM):
    platform = "giraph"
    model = "imputation"
    variant = "initial"

    def __init__(self, censored_points: np.ndarray, mask: np.ndarray, clusters: int,
                 rng: np.random.Generator, cluster_spec: ClusterSpec,
                 tracer: Tracer | None = None) -> None:
        censored_points = np.asarray(censored_points, dtype=float)
        self.mask = np.asarray(mask, dtype=bool)
        column_means = np.nanmean(censored_points, axis=0)
        completed = censored_points.copy()
        fill = np.broadcast_to(column_means, completed.shape)
        completed[self.mask] = fill[self.mask]
        super().__init__(completed, clusters, rng, cluster_spec, tracer)

    def initialize(self) -> None:
        super().initialize()
        # Attach each point's censoring mask to its vertex.
        data = self.engine.kinds["data"]
        data.values = {
            j: {"x": x, "mask": self.mask[j]} for j, x in data.values.items()
        }

    def _data_compute(self, ctx, vid, value, messages):
        if self._phase(ctx.superstep) != 2:
            return
        triples = sorted(m for m in messages if isinstance(m, tuple) and len(m) == 4)
        if not triples:
            return
        x, mask = value["x"], value["mask"]
        weights = scalar_marginal_weights(
            x, mask, [np.log(max(pi, 1e-300)) for _, pi, _, _ in triples],
            [mu for _, _, mu, _ in triples],
            [dist.cov for _, _, _, dist in triples],
        )
        choice = int(Categorical(weights).sample(self.rng))
        k, _, mu, dist = triples[choice]
        completed = impute_point(self.rng, x, mask, mu, dist.cov)
        value["x"] = completed
        diff = completed - mu
        d = completed.size
        ctx.charge_flops(self.clusters * (6.0 * d**3 / 8.0 + 3.0 * d * d) + d * d)
        ctx.send("cluster", k, (1.0, completed, np.outer(diff, diff)))

    def _data_compute_batch(self, ctx, items):
        """Marginal membership weights for the whole population in one
        stacked evaluation; the (membership, conditional-impute) draw
        pairs stay interleaved per point in vertex order, with the
        conditioning factorizations hoisted per (cluster, pattern)."""
        if self._phase(ctx.superstep) != 2:
            return
        live = []
        for vid, value, messages in items:
            triples = sorted(m for m in messages
                             if isinstance(m, tuple) and len(m) == 4)
            if triples:
                live.append((vid, value, triples))
        if not live:
            return
        d = live[0][1]["x"].size
        if d > ROW_STABLE_MAX_DIM:
            fastpath.record_decline("giraph.impute:marginal-weights")
            for vid, value, messages in items:
                ctx._current_vertex = vid
                self._data_compute(ctx, vid, value, messages)
            return
        triples = live[0][2]
        state = gmm.GMMState(
            pi=np.array([t[1] for t in triples]),
            means=np.vstack([t[2] for t in triples]),
            covariances=np.stack([t[3].cov for t in triples]),
        )
        points = np.array([value["x"] for _, value, _ in live])
        masks = np.array([value["mask"] for _, value, _ in live])
        weights = marginal_membership_weights(points, masks, state)
        conditioners: dict[tuple[int, bytes], object] = {}
        flops = self.clusters * (6.0 * d**3 / 8.0 + 3.0 * d * d) + d * d
        for j, (vid, value, triples) in enumerate(live):
            ctx._current_vertex = vid
            choice = int(Categorical(weights[j]).sample(self.rng))
            k, _, mu, dist = triples[choice]
            x, row_mask = points[j], masks[j]
            completed = x.copy()
            if row_mask.all():
                completed[:] = dist.sample(self.rng)
            elif row_mask.any():
                cache_key = (choice, row_mask.tobytes())
                conditional = conditioners.get(cache_key)
                if conditional is None:
                    conditional = conditioners[cache_key] = dist.conditioner(
                        np.flatnonzero(~row_mask))
                completed[row_mask] = conditional.sample_given(
                    self.rng, x[~row_mask])
            value["x"] = completed
            diff = completed - mu
            ctx.charge_flops(flops)
            ctx.send("cluster", k, (1.0, completed, np.outer(diff, diff)))

    def completed_points(self) -> np.ndarray:
        data = self.engine.kinds["data"]
        return np.vstack([data.values[j]["x"] for j in sorted(data.values)])
