"""Giraph Gaussian imputation (paper Section 9, Figure 5).

The Giraph GMM message dance plus the per-point imputation step inside
the data vertices' compute: each data vertex keeps its censoring mask,
samples its membership from the observed coordinates, redraws the
censored ones from the conditional normal, and ships the completed
statistics triple.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.machine import ClusterSpec
from repro.cluster.tracer import Tracer
from repro.impls.giraph.gmm import GiraphGMM
from repro.kernels.imputation import impute_point, scalar_marginal_weights
from repro.stats import Categorical


class GiraphImputation(GiraphGMM):
    platform = "giraph"
    model = "imputation"
    variant = "initial"

    def __init__(self, censored_points: np.ndarray, mask: np.ndarray, clusters: int,
                 rng: np.random.Generator, cluster_spec: ClusterSpec,
                 tracer: Tracer | None = None) -> None:
        censored_points = np.asarray(censored_points, dtype=float)
        self.mask = np.asarray(mask, dtype=bool)
        column_means = np.nanmean(censored_points, axis=0)
        completed = censored_points.copy()
        fill = np.broadcast_to(column_means, completed.shape)
        completed[self.mask] = fill[self.mask]
        super().__init__(completed, clusters, rng, cluster_spec, tracer)

    def initialize(self) -> None:
        super().initialize()
        # Attach each point's censoring mask to its vertex.
        data = self.engine.kinds["data"]
        data.values = {
            j: {"x": x, "mask": self.mask[j]} for j, x in data.values.items()
        }

    def _data_compute(self, ctx, vid, value, messages):
        if self._phase(ctx.superstep) != 2:
            return
        triples = sorted(m for m in messages if isinstance(m, tuple) and len(m) == 4)
        if not triples:
            return
        x, mask = value["x"], value["mask"]
        weights = scalar_marginal_weights(
            x, mask, [np.log(max(pi, 1e-300)) for _, pi, _, _ in triples],
            [mu for _, _, mu, _ in triples],
            [dist.cov for _, _, _, dist in triples],
        )
        choice = int(Categorical(weights).sample(self.rng))
        k, _, mu, dist = triples[choice]
        completed = impute_point(self.rng, x, mask, mu, dist.cov)
        value["x"] = completed
        diff = completed - mu
        d = completed.size
        ctx.charge_flops(self.clusters * (6.0 * d**3 / 8.0 + 3.0 * d * d) + d * d)
        ctx.send("cluster", k, (1.0, completed, np.outer(diff, diff)))

    def completed_points(self) -> np.ndarray:
        data = self.engine.kinds["data"]
        return np.vstack([data.values[j]["x"] for j in sorted(data.values)])
