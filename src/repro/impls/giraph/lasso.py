"""Giraph Bayesian Lasso (paper Section 6.4, Figure 2).

Three vertex types, as in the paper: data vertices, dimensional vertices
(one per regressor, collecting rows of the Gram matrix), and a model
vertex holding beta, sigma^2 and the tau vector.

``GiraphLasso`` is the plain code the paper could not run at any scale:
every data vertex ships its full p x p ``x x^T`` contribution as one
message during initialization — at p = 1000 that is an 8 MB message per
point, and the sender-side buffers blow the heap (the table's
Fail/Fail/Fail row).  ``GiraphLassoSuperVertex`` groups ~thousands of
points per vertex so only one Gram block per group ships, which is the
version that runs in about a minute per iteration.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.events import DATA, Site
from repro.cluster.machine import ClusterSpec
from repro.cluster.tracer import Tracer
from repro.graph import OUTGOING_BUFFER_FRACTION, GiraphEngine, group_rows
from repro.impls.base import Implementation
from repro.kernels import lasso
from repro.kernels.folds import fold_array_sum


class GiraphLassoSuperVertex(Implementation):
    platform = "giraph"
    model = "lasso"
    variant = "super-vertex"

    #: Supersteps per Gibbs iteration after initialization.
    SUPERSTEPS = 2
    #: Supersteps spent building the Gram matrix.
    INIT_SUPERSTEPS = 2

    def __init__(self, x: np.ndarray, y: np.ndarray, rng: np.random.Generator,
                 cluster_spec: ClusterSpec, tracer: Tracer | None = None,
                 lam: float = lasso.DEFAULT_LAM, block_points: int = 64) -> None:
        self.x = np.asarray(x, dtype=float)
        self.y = np.asarray(y, dtype=float)
        self.rng = rng
        self.lam = lam
        self.block_points = block_points
        self.engine = GiraphEngine(cluster_spec, tracer=tracer)
        self.pre: lasso.LassoPrecomputed | None = None
        self.state: lasso.LassoState | None = None

    def scale_groups(self) -> tuple[str, ...]:
        return ("data", "p2", "sv")

    def _blocks(self) -> list[tuple[np.ndarray, np.ndarray]]:
        n = self.x.shape[0]
        xs = group_rows(self.x, max(1, n // self.block_points))
        ys = group_rows(self.y.reshape(-1, 1), max(1, n // self.block_points))
        return [(bx, by.ravel()) for bx, by in zip(xs, ys)]

    def initialize(self) -> None:
        engine = self.engine
        n, p = self.x.shape
        engine.add_vertex_kind("data", scale=DATA)
        engine.add_vertex_kind("dimension")
        engine.add_vertex_kind("model")
        engine.add_vertices("data", dict(enumerate(self._blocks())))
        engine.add_vertices("dimension", {j: {"row": np.zeros(p)} for j in range(p)})
        engine.add_vertices("model", {0: {
            "state": lasso.initial_state(self.rng, p),
            "gram": np.zeros((p, p)), "xty": np.zeros(p), "y_sum": 0.0, "n": 0,
        }})
        engine.set_combiner("dimension", lambda a, b: a + b,
                            batch_fn=fold_array_sum)
        engine.set_compute("data", self._data_compute,
                           batch_fn=self._data_compute_batch)
        engine.set_compute("dimension", self._dimension_compute)
        engine.set_compute("model", self._model_compute)
        for _ in range(self.INIT_SUPERSTEPS + 1):
            engine.superstep()
        model = engine.vertex_value("model", 0)
        y_mean = model["y_sum"] / model["n"]
        self.pre = lasso.LassoPrecomputed(
            xtx=model["gram"], xty=model["xty"] - y_mean * model["x_sum"],
            y_mean=y_mean, n=n,
        )
        model["pre"] = self.pre
        self.state = model["state"]

    def iterate(self, iteration: int) -> None:
        for _ in range(self.SUPERSTEPS):
            self.engine.superstep()
        self.state = self.engine.vertex_value("model", 0)["state"]

    # -- vertex programs ---------------------------------------------------

    #: Scale group of the Gram-message buffer bytes: one p x p block per
    #: sender, so the resident volume grows with senders x p^2.
    GRAM_BUFFER_SCALE = "sv*p2"

    def _data_compute(self, ctx, vid, value, messages):
        bx, by = value
        p = bx.shape[1]
        if ctx.superstep == 0:
            # Gram contributions: one p x p block per sender, a row at a
            # time to the dimensional vertices.  The serialized blocks
            # sit in the senders' heaps until flushed — with one point
            # per vertex this is the paper's Fail/Fail/Fail row.
            gram = bx.T @ bx
            ctx.charge_flops(float(bx.shape[0] * p * p))
            self.engine.tracer.materialize(
                bytes=p * p * 8.0 * OUTGOING_BUFFER_FRACTION,
                scale=self.GRAM_BUFFER_SCALE, site=Site.CLUSTER,
                label="gram-message-buffers",
            )
            for j in range(p):
                ctx.send("dimension", j, gram[j])
            ctx.send("model", 0, ("y", float(by.sum()), len(by), bx.sum(axis=0),
                                  bx.T @ by))
            return
        if ctx.superstep > self.INIT_SUPERSTEPS:
            beta = None
            for message in messages:
                if isinstance(message, tuple) and message[0] == "beta":
                    beta = message[1]
            if beta is None:
                return
            # Residuals against the raw response; the model vertex owns
            # the centering correction.
            residuals = by - bx @ beta
            ctx.charge_flops(2.0 * bx.shape[0] * p)
            ctx.send("model", 0, ("rss", float(residuals @ residuals),
                                  float(residuals.sum()), len(by)))

    def _data_compute_batch(self, ctx, items):
        """Steady state: beta is the same broadcast in every vertex's
        mailbox, so it parses once instead of per-vertex; the per-block
        residual products then replay in vertex order.  The Gram
        supersteps have per-vertex payloads and fall through scalar."""
        if ctx.superstep <= self.INIT_SUPERSTEPS:
            for vid, value, messages in items:
                ctx._current_vertex = vid
                self._data_compute(ctx, vid, value, messages)
            return
        beta = None
        for message in items[0][2]:
            if isinstance(message, tuple) and message[0] == "beta":
                beta = message[1]
        if beta is None:
            return
        for vid, (bx, by), _ in items:
            ctx._current_vertex = vid
            residuals = by - bx @ beta
            ctx.charge_flops(2.0 * bx.shape[0] * bx.shape[1])
            ctx.send("model", 0, ("rss", float(residuals @ residuals),
                                  float(residuals.sum()), len(by)))

    def _dimension_compute(self, ctx, vid, value, messages):
        if ctx.superstep == 1:
            row = None
            for message in messages:
                row = message if row is None else row + message
            if row is not None:
                value["row"] = row
                ctx.send("model", 0, ("gram", vid, row))

    def _model_compute(self, ctx, vid, value, messages):
        if ctx.superstep <= self.INIT_SUPERSTEPS:
            for message in messages:
                if not isinstance(message, tuple):
                    continue
                if message[0] == "y":
                    _, y_sum, count, x_sum, xty = message
                    value["y_sum"] += y_sum
                    value["n"] += count
                    value["x_sum"] = value.get("x_sum", 0.0) + x_sum
                    value["xty"] = value["xty"] + xty
                elif message[0] == "gram":
                    value["gram"][message[1]] = message[2]
            if ctx.superstep == self.INIT_SUPERSTEPS:
                # Kick off the chain: broadcast the initial beta.
                ctx.send_to_kind("data", ("beta", value["state"].beta))
            return
        # Steady state: collect residuals, update the model, re-broadcast.
        rss_raw, res_sum, count = 0.0, 0.0, 0
        for message in messages:
            if isinstance(message, tuple) and message[0] == "rss":
                rss_raw += message[1]
                res_sum += message[2]
                count += message[3]
        if count == 0:
            return
        pre = value["pre"]
        state = value["state"]
        # Residuals were computed against the uncentered response; correct
        # for the mean: sum (r - y_mean)^2 = sum r^2 - 2 y_mean sum r + n y_mean^2.
        rss = rss_raw - 2.0 * pre.y_mean * res_sum + count * pre.y_mean**2
        state.sigma2 = lasso.sample_sigma2(self.rng, pre.n, state, rss)
        state.tau2_inv = lasso.sample_tau2_inv(self.rng, state, self.lam)
        state.beta = lasso.sample_beta(self.rng, pre, state.tau2_inv, state.sigma2)
        p = state.p
        ctx.charge_flops(float(p**3 + 40 * p))
        ctx.send_to_kind("data", ("beta", state.beta))


class GiraphLasso(GiraphLassoSuperVertex):
    """The plain (one point per vertex) code that Fails at every scale:
    every data point's p x p Gram block is an 8 MB message at p = 1000,
    and the per-sender buffers are data-scaled."""

    variant = "initial"
    GRAM_BUFFER_SCALE = "data*p2"

    def __init__(self, x, y, rng, cluster_spec, tracer=None,
                 lam=lasso.DEFAULT_LAM) -> None:
        super().__init__(x, y, rng, cluster_spec, tracer, lam, block_points=1)

    def scale_groups(self) -> tuple[str, ...]:
        return ("data", "p2")
