"""Giraph GMM (paper Section 5.4, Figure 1).

The message dance follows the paper exactly, three supersteps per Gibbs
iteration:

1. the cluster-membership (mixture) vertex updates pi from last
   iteration's counts and sends pi_k to the kth cluster vertex;
2. each cluster vertex broadcasts its triple <mu_k, Sigma_k, pi_k> to
   the whole system (no explicit edges — the paper's naming scheme);
3. each data vertex samples its membership from the K received triples
   and sends <1, x_j, (x_j - mu_k)(x_j - mu_k)^T> to the cluster vertex
   it chose; Giraph's combiner aggregates these per machine, and the
   cluster vertices resample their parameters and report counts.

All sampler math comes from :mod:`repro.kernels.gmm`; this module only
maps the kernels onto BSP vertex programs.
"""

from __future__ import annotations

import numpy as np

from repro import fastpath
from repro.cluster.events import DATA
from repro.cluster.machine import ClusterSpec
from repro.cluster.tracer import Tracer
from repro.graph import GiraphEngine
from repro.impls.base import Implementation, declare_scale_limit
from repro.kernels import gmm
from repro.stats import Categorical, MultivariateNormal, sample_categorical_rows
from repro.stats.mvn import ROW_STABLE_MAX_DIM


class GiraphGMM(Implementation):
    platform = "giraph"
    model = "gmm"
    variant = "initial"

    #: Supersteps per Gibbs iteration.
    SUPERSTEPS = 3

    def __init__(self, points: np.ndarray, clusters: int, rng: np.random.Generator,
                 cluster_spec: ClusterSpec, tracer: Tracer | None = None) -> None:
        self.points = np.asarray(points, dtype=float)
        self.clusters = clusters
        self.rng = rng
        self.engine = GiraphEngine(cluster_spec, tracer=tracer)
        self.prior: gmm.GMMPrior | None = None
        self.state: gmm.GMMState | None = None

    def initialize(self) -> None:
        engine, rng = self.engine, self.rng
        n, d = self.points.shape
        engine.add_vertex_kind("data", scale=DATA)
        engine.add_vertex_kind("cluster")
        engine.add_vertex_kind("mixture")
        engine.add_vertices("data", {j: self.points[j] for j in range(n)})

        # Hyperparameters by in-graph aggregation (mean, then variance).
        total = engine.map_reduce_vertices(
            "data", lambda vid, x: (x, 1), lambda a, b: (a[0] + b[0], a[1] + b[1]),
            language=engine.language, flops_per_vertex=float(d), label="hyper-mean",
        )
        hyper_mean = total[0] / total[1]
        sq = engine.map_reduce_vertices(
            "data", lambda vid, x: (x - hyper_mean) ** 2, lambda a, b: a + b,
            language=engine.language, flops_per_vertex=2.0 * d, label="hyper-var",
        )
        variances = sq / n
        self.prior = gmm.GMMPrior(
            mu0=hyper_mean, lambda0=np.diag(1.0 / variances), psi=np.diag(variances),
            v=gmm.df_prior(d), alpha=np.full(self.clusters, gmm.DEFAULT_ALPHA),
        )
        self.state = gmm.initial_state(rng, self.prior)
        engine.add_vertices("cluster", {
            k: {"mu": self.state.means[k], "sigma": self.state.covariances[k],
                "pi": self.state.pi[k], "stats": None, "count": 0.0}
            for k in range(self.clusters)
        })
        engine.add_vertices("mixture", {0: {"pi": self.state.pi.copy(),
                                            "counts": np.zeros(self.clusters)}})
        engine.set_combiner("cluster", gmm.add_triples, batch_fn=gmm.add_triples_batch)
        engine.set_compute("data", self._data_compute,
                           batch_fn=self._data_compute_batch)
        engine.set_compute("cluster", self._cluster_compute)
        engine.set_compute("mixture", self._mixture_compute)

    def iterate(self, iteration: int) -> None:
        if self.variant == "initial":
            # Section 5.5: the point-granularity Giraph codes could not
            # be run at 100 machines; no mechanism is named, so the
            # limit is declared (the super-vertex variants are exempt).
            declare_scale_limit(self.engine.tracer, self.engine.cluster, 0.7,
                                "giraph-point-granularity")
        for _ in range(self.SUPERSTEPS):
            self.engine.superstep()
        self._refresh_state()

    # -- vertex programs ---------------------------------------------------

    def _phase(self, superstep: int) -> int:
        return superstep % self.SUPERSTEPS

    def _mixture_compute(self, ctx, vid, value, messages):
        if self._phase(ctx.superstep) != 0:
            return
        counts = np.zeros(self.clusters)
        for k, count in messages:
            counts[k] = count
        value["counts"] = counts
        value["pi"] = gmm.sample_pi(self.rng, self.prior, counts)
        ctx.charge_flops(self.clusters * 20.0)
        for k in range(self.clusters):
            ctx.send("cluster", k, ("pi", float(value["pi"][k])))

    def _cluster_compute(self, ctx, vid, value, messages):
        phase = self._phase(ctx.superstep)
        if phase == 1:
            for message in messages:
                if isinstance(message, tuple) and message[0] == "pi":
                    value["pi"] = message[1]
            dist = MultivariateNormal(value["mu"], value["sigma"])
            ctx.send_to_kind("data", (vid, value["pi"], value["mu"], dist))
            ctx.charge_flops(float(len(value["mu"]) ** 3))
        elif phase == 0 and ctx.superstep >= self.SUPERSTEPS:
            d = len(value["mu"])
            stats = (0.0, np.zeros(d), np.zeros((d, d)))
            for message in messages:
                if isinstance(message, tuple) and len(message) == 3:
                    stats = gmm.add_triples(stats, message)
            count, sum_x, scatter = stats
            value["count"] = count
            value["mu"], value["sigma"] = gmm.update_cluster(
                self.rng, self.prior, value["sigma"], count, sum_x, scatter,
            )
            ctx.charge_flops(6.0 * d**3)
            ctx.send("mixture", 0, (vid, count))

    def _data_compute(self, ctx, vid, x, messages):
        if self._phase(ctx.superstep) != 2:
            return
        triples = sorted(m for m in messages if isinstance(m, tuple) and len(m) == 4)
        if not triples:
            return
        weights = gmm.scalar_membership_weights(
            x, [np.log(max(pi, 1e-300)) for _, pi, _, _ in triples],
            [dist for _, _, _, dist in triples],
        )
        choice = int(Categorical(weights).sample(self.rng))
        k, _, mu, _ = triples[choice]
        d = x.size
        ctx.charge_flops(self.clusters * (3.0 * d * d + 4.0 * d) + d * d)
        ctx.send("cluster", k, gmm.membership_triple(x, mu))

    def _data_compute_batch(self, ctx, items):
        """All points' membership densities in one stacked evaluation
        and one merged categorical draw.  The broadcast triples are the
        same objects at every vertex, so the weight rows match the
        per-vertex scalar calls bitwise — except past the row-stability
        bound, where the stacked solve reorders and the batch declines."""
        if self._phase(ctx.superstep) != 2:
            return
        live = []
        for vid, x, messages in items:
            triples = sorted(m for m in messages
                             if isinstance(m, tuple) and len(m) == 4)
            if triples:
                live.append((vid, x, triples))
        if not live:
            return
        d = live[0][1].size
        if d > ROW_STABLE_MAX_DIM:
            fastpath.record_decline("giraph.gmm:membership-weights")
            for vid, x, messages in items:
                ctx._current_vertex = vid
                self._data_compute(ctx, vid, x, messages)
            return
        triples = live[0][2]
        log_pis = [np.log(max(t[1], 1e-300)) for t in triples]
        dists = [t[3] for t in triples]
        xs = np.vstack([x for _, x, _ in live])
        choices = sample_categorical_rows(
            self.rng, gmm.batch_membership_weights(xs, log_pis, dists))
        flops = self.clusters * (3.0 * d * d + 4.0 * d) + d * d
        for (vid, x, triples), choice in zip(live, choices):
            ctx._current_vertex = vid
            k, _, mu, _ = triples[int(choice)]
            ctx.charge_flops(flops)
            ctx.send("cluster", k, gmm.membership_triple(x, mu))

    # -- bookkeeping --------------------------------------------------------

    def _refresh_state(self) -> None:
        assert self.state is not None
        for k in range(self.clusters):
            vertex = self.engine.vertex_value("cluster", k)
            self.state.means[k] = vertex["mu"]
            self.state.covariances[k] = vertex["sigma"]
        self.state.pi = self.engine.vertex_value("mixture", 0)["pi"].copy()


class GiraphGMMSuperVertex(GiraphGMM):
    """Figure 1(c): blocks of points per data vertex; one combined
    statistics message per (super vertex, cluster)."""

    variant = "super-vertex"

    def __init__(self, points, clusters, rng, cluster_spec, tracer=None,
                 block_points: int = 64) -> None:
        super().__init__(points, clusters, rng, cluster_spec, tracer)
        self.block_points = block_points

    def scale_groups(self) -> tuple[str, ...]:
        return ("data", "sv")

    def initialize(self) -> None:
        from repro.graph.supervertex import group_rows

        # Same wiring as the parent, but data vertices hold blocks.
        engine, rng = self.engine, self.rng
        n, d = self.points.shape
        blocks = group_rows(self.points, max(1, n // self.block_points))
        # Blob payloads and FLOPs scale with the data; message/edge
        # cardinality scales with the super-vertex count.
        engine.add_vertex_kind("data", scale=DATA, edge_scale="sv")
        engine.add_vertex_kind("cluster")
        engine.add_vertex_kind("mixture")
        engine.add_vertices("data", dict(enumerate(blocks)))

        total = engine.map_reduce_vertices(
            "data", lambda vid, block: (block.sum(axis=0), len(block)),
            lambda a, b: (a[0] + b[0], a[1] + b[1]),
            language="java", flops_per_vertex=float(self.block_points * d),
            label="hyper-mean",
        )
        hyper_mean = total[0] / total[1]
        sq = engine.map_reduce_vertices(
            "data", lambda vid, block: ((block - hyper_mean) ** 2).sum(axis=0),
            lambda a, b: a + b, language="java",
            flops_per_vertex=2.0 * self.block_points * d, label="hyper-var",
        )
        variances = sq / n
        self.prior = gmm.GMMPrior(
            mu0=hyper_mean, lambda0=np.diag(1.0 / variances), psi=np.diag(variances),
            v=gmm.df_prior(d), alpha=np.full(self.clusters, gmm.DEFAULT_ALPHA),
        )
        self.state = gmm.initial_state(rng, self.prior)
        engine.add_vertices("cluster", {
            k: {"mu": self.state.means[k], "sigma": self.state.covariances[k],
                "pi": self.state.pi[k], "stats": None, "count": 0.0}
            for k in range(self.clusters)
        })
        engine.add_vertices("mixture", {0: {"pi": self.state.pi.copy(),
                                            "counts": np.zeros(self.clusters)}})
        engine.set_combiner("cluster", gmm.add_triples, batch_fn=gmm.add_triples_batch)
        engine.set_compute("data", self._data_compute,
                           batch_fn=self._data_compute_batch)
        engine.set_compute("cluster", self._cluster_compute)
        engine.set_compute("mixture", self._mixture_compute)

    def _data_compute(self, ctx, vid, block, messages):
        if self._phase(ctx.superstep) != 2:
            return
        triples = sorted(m for m in messages if isinstance(m, tuple) and len(m) == 4)
        if not triples:
            return
        state = gmm.GMMState(
            pi=np.array([t[1] for t in triples]),
            means=np.vstack([t[2] for t in triples]),
            covariances=np.stack([t[3].cov for t in triples]),
        )
        labels = sample_categorical_rows(
            self.rng, gmm.membership_weights(block, state)
        )
        stats = gmm.sufficient_statistics(block, labels, state)
        d = block.shape[1]
        ctx.charge_flops(len(block) * (self.clusters * (3.0 * d * d + 4.0 * d) + d * d))
        for k in range(self.clusters):
            if stats.counts[k] > 0:
                ctx.send("cluster", k,
                         (stats.counts[k], stats.sums[k], stats.scatters[k]))

    def _data_compute_batch(self, ctx, items):
        """All blocks vstack into one membership evaluation and one
        merged draw; the per-block draw sequence is the merged rows in
        block order, so slicing the labels back out is bitwise."""
        if self._phase(ctx.superstep) != 2:
            return
        live = []
        for vid, block, messages in items:
            triples = sorted(m for m in messages
                             if isinstance(m, tuple) and len(m) == 4)
            if triples:
                live.append((vid, block, triples))
        if not live:
            return
        d = live[0][1].shape[1]
        if d > ROW_STABLE_MAX_DIM:
            fastpath.record_decline("giraph.gmm:membership-weights")
            for vid, block, messages in items:
                ctx._current_vertex = vid
                self._data_compute(ctx, vid, block, messages)
            return
        triples = live[0][2]
        state = gmm.GMMState(
            pi=np.array([t[1] for t in triples]),
            means=np.vstack([t[2] for t in triples]),
            covariances=np.stack([t[3].cov for t in triples]),
        )
        stacked = np.vstack([block for _, block, _ in live])
        labels = sample_categorical_rows(
            self.rng, gmm.membership_weights(stacked, state))
        offset = 0
        for vid, block, _ in live:
            ctx._current_vertex = vid
            block_labels = labels[offset:offset + len(block)]
            offset += len(block)
            stats = gmm.sufficient_statistics(block, block_labels, state)
            ctx.charge_flops(
                len(block) * (self.clusters * (3.0 * d * d + 4.0 * d) + d * d))
            for k in range(self.clusters):
                if stats.counts[k] > 0:
                    ctx.send("cluster", k,
                             (stats.counts[k], stats.sums[k], stats.scatters[k]))
