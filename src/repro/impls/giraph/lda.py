"""Giraph LDA implementations (paper Section 8, Figure 4).

Like the Giraph HMM but with a five-times-larger model (100 topics):
document (or super-vertex) data vertices resample their z and theta,
ship sparse per-topic word counts to the topic vertices through
combiners, and the topic vertices resample and broadcast their phi rows.
The bigger rows are what pushed Giraph's LDA to ~10x its HMM time and
off the cliff at 100 machines.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.events import DATA
from repro.cluster.machine import ClusterSpec
from repro.cluster.tracer import Tracer
from repro.graph import GiraphEngine, group_items
from repro.impls.base import Implementation, declare_scale_limit
from repro.kernels import lda
from repro.kernels.folds import merge_sparse, sparse_topic_counts


class GiraphLDADocument(Implementation):
    platform = "giraph"
    model = "lda"
    variant = "document"

    SUPERSTEPS = 2

    def __init__(self, documents: list, vocabulary: int, topics: int,
                 rng: np.random.Generator, cluster_spec: ClusterSpec,
                 tracer: Tracer | None = None, alpha: float = lda.DEFAULT_ALPHA,
                 beta: float = lda.DEFAULT_BETA) -> None:
        self.documents = [np.asarray(d, dtype=int) for d in documents]
        self.vocabulary = vocabulary
        self.topics = topics
        self.rng = rng
        self.alpha = alpha
        self.beta = beta
        self.engine = GiraphEngine(cluster_spec, tracer=tracer)
        self.phi: np.ndarray | None = None

    def _data_values(self) -> dict:
        thetas = lda.initial_thetas(self.rng, len(self.documents), self.topics,
                                    self.alpha)
        return {
            d_id: {"words": words, "theta": thetas[d_id]}
            for d_id, words in enumerate(self.documents)
        }

    def initialize(self) -> None:
        engine = self.engine
        engine.add_vertex_kind("data", scale=DATA)
        engine.add_vertex_kind("topic")
        engine.add_vertices("data", self._data_values())
        self.phi = lda.initial_phi(self.rng, self.topics, self.vocabulary, self.beta)
        engine.add_vertices("topic", {
            t: {"phi": self.phi[t]} for t in range(self.topics)
        })
        engine.set_combiner("topic", merge_sparse)
        engine.set_compute("data", self._data_compute,
                           batch_fn=self._data_compute_batch)
        engine.set_compute("topic", self._topic_compute)

    def iterate(self, iteration: int) -> None:
        for _ in range(self.SUPERSTEPS):
            self.engine.superstep()
        for t in range(self.topics):
            self.phi[t] = self.engine.vertex_value("topic", t)["phi"]

    def _data_compute(self, ctx, vid, value, messages):
        if ctx.superstep % self.SUPERSTEPS != 0:
            return
        words = value["words"]
        z, new_theta, _ = lda.resample_document(self.rng, words, value["theta"],
                                                self.phi, self.alpha)
        value["theta"] = new_theta
        # ~8 JVM operations per word over the 100-topic weights
        # (calibrated to the paper's 22:22 document-based entry).
        ctx.charge_ops(float(len(words) * 8))
        for topic, counts in sparse_topic_counts(z, words):
            ctx.send("topic", topic, counts)

    def _data_compute_batch(self, ctx, items):
        # Host fast path: one vectorized resample over the whole data
        # population; the per-document draws and sends replay in vertex
        # order, so traces and model state match the scalar compute
        # bitwise.
        if ctx.superstep % self.SUPERSTEPS != 0:
            return
        pairs = [(value["words"], value["theta"]) for _, value, _ in items]
        resampled = lda.resample_documents_batch(self.rng, pairs, self.phi,
                                                 self.alpha)
        for (vertex, value, _), (z, new_theta) in zip(items, resampled):
            value["theta"] = new_theta
            ctx._current_vertex = vertex
            words = value["words"]
            ctx.charge_ops(float(len(words) * 8))
            for topic, counts in sparse_topic_counts(z, words):
                ctx.send("topic", topic, counts)

    def _topic_compute(self, ctx, vid, value, messages):
        if ctx.superstep % self.SUPERSTEPS != 1:
            return
        counts = np.zeros(self.vocabulary)
        for message in messages:
            for word, count in message.items():
                counts[word] += count
        value["phi"] = lda.resample_phi_row(self.rng, self.beta, counts)
        ctx.charge_flops(float(self.vocabulary * 20))
        ctx.send_to_kind("data", ("phi-row", vid, value["phi"]))

    def thetas(self) -> np.ndarray:
        return np.vstack([
            self.engine.vertex_value("data", d)["theta"]
            for d in range(len(self.documents))
        ])


class GiraphLDASuperVertex(GiraphLDADocument):
    variant = "super-vertex"

    def __init__(self, documents, vocabulary, topics, rng, cluster_spec,
                 tracer=None, alpha=lda.DEFAULT_ALPHA, beta=lda.DEFAULT_BETA,
                 docs_per_block: int = 16) -> None:
        super().__init__(documents, vocabulary, topics, rng, cluster_spec,
                         tracer, alpha, beta)
        self.docs_per_block = docs_per_block

    def scale_groups(self) -> tuple[str, ...]:
        return ("data", "sv")

    def initialize(self) -> None:
        super().initialize()
        self.engine.kinds["data"].edge_scale = "sv"

    def iterate(self, iteration: int) -> None:
        # "Failed to run at all on 100 machines" (Section 8.2) with no
        # mechanism named: the limit is declared, not derived.
        declare_scale_limit(self.engine.tracer, self.engine.cluster, 0.7,
                            "giraph-lda-super-vertex")
        super().iterate(iteration)

    def _data_values(self) -> dict:
        thetas = lda.initial_thetas(self.rng, len(self.documents), self.topics,
                                    self.alpha)
        blocks = group_items(list(range(len(self.documents))),
                             max(1, len(self.documents) // self.docs_per_block))
        return {
            b: {"docs": block,
                "words": [self.documents[d] for d in block],
                "thetas": [thetas[d] for d in block]}
            for b, block in enumerate(blocks)
        }

    def _data_compute(self, ctx, vid, value, messages):
        if ctx.superstep % self.SUPERSTEPS != 0:
            return
        totals = np.zeros((self.topics, self.vocabulary))
        total_words = 0
        for slot, words in enumerate(value["words"]):
            z, new_theta, counts = lda.resample_document(
                self.rng, words, value["thetas"][slot], self.phi, self.alpha)
            value["thetas"][slot] = new_theta
            totals += counts
            total_words += len(words)
        # The LDA super vertex helps far less than the HMM one: the
        # 100-topic per-word work stays (~7 ops/word, paper: 18:49).
        ctx.charge_ops(float(total_words * 7))
        for topic in range(self.topics):
            nonzero = np.flatnonzero(totals[topic])
            if nonzero.size:
                ctx.send("topic", topic,
                         {int(w): float(totals[topic, w]) for w in nonzero})

    def _data_compute_batch(self, ctx, items):
        # Fast path over every (block, slot) document at once.  The
        # counts each document contributes are rebuilt exactly as
        # :func:`repro.kernels.lda.resample_document` builds them, and
        # the per-block fold into ``totals`` keeps the scalar addition
        # order, so the sent messages are bitwise identical.
        if ctx.superstep % self.SUPERSTEPS != 0:
            return
        pairs = [(words, value["thetas"][slot])
                 for _, value, _ in items
                 for slot, words in enumerate(value["words"])]
        resampled = lda.resample_documents_batch(self.rng, pairs, self.phi,
                                                 self.alpha)
        pos = 0
        for vertex, value, _ in items:
            totals = np.zeros((self.topics, self.vocabulary))
            total_words = 0
            for slot, words in enumerate(value["words"]):
                z, new_theta = resampled[pos]
                pos += 1
                value["thetas"][slot] = new_theta
                counts = np.zeros((self.topics, self.vocabulary))
                np.add.at(counts, (z, words), 1.0)
                totals += counts
                total_words += len(words)
            ctx._current_vertex = vertex
            ctx.charge_ops(float(total_words * 7))
            for topic in range(self.topics):
                nonzero = np.flatnonzero(totals[topic])
                if nonzero.size:
                    ctx.send("topic", topic,
                             {int(w): float(totals[topic, w]) for w in nonzero})

    def thetas(self) -> np.ndarray:
        out: dict[int, np.ndarray] = {}
        for vertex in self.engine.kinds["data"].values.values():
            for doc_id, theta in zip(vertex["docs"], vertex["thetas"]):
                out[doc_id] = theta
        return np.vstack([out[d] for d in range(len(self.documents))])
