"""Giraph HMM implementations (paper Section 7.4, Figure 3).

``GiraphHMMWord`` is the word-per-vertex code (Fail at scale: half a
billion word vertices per machine).  Each word vertex messages its state
to its sequence neighbors, resamples on its parity turn, and sends
(word, 1) / (state-pair, 1) counts to the state vertices through
combiners.  ``GiraphHMMDocument`` keeps one vertex per document (the
11-minute entry); ``GiraphHMMSuperVertex`` one vertex per block of
documents (the ~2.5-minute code that also scales to 100 machines).

delta_0 travels through a global aggregator; the emission/transition
rows live at the K state vertices, which broadcast the full model to the
data kind each iteration.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.events import DATA
from repro.cluster.machine import ClusterSpec
from repro.cluster.tracer import Tracer
from repro.graph import GiraphEngine, group_items
from repro.impls.base import Implementation
from repro.kernels import hmm
from repro.kernels.folds import fold_array_sum
from repro.stats import sample_categorical_rows


def _sparse_counts(counts: hmm.HMMCounts, state: int) -> dict:
    """One state's slice of a document's counts as a sparse message —
    a dense vocabulary row per message would be a 10k-float payload."""
    emissions = counts.emissions[state]
    nonzero = np.flatnonzero(emissions)
    return {
        "emit": {int(w): float(emissions[w]) for w in nonzero},
        "trans": counts.transitions[state].copy(),
    }


def _merge_state_counts(a: dict, b: dict) -> dict:
    out = {"emit": dict(a["emit"]), "trans": a["trans"] + b["trans"]}
    for word, count in b["emit"].items():
        out["emit"][word] = out["emit"].get(word, 0.0) + count
    return out


def _merge_state_counts_batch(messages: list) -> dict:
    """Left fold of :func:`_merge_state_counts`: same first-occurrence
    key order in the emission dict, same per-key addition order, and the
    transition rows sum by sequential cumsum."""
    out = {"emit": dict(messages[0]["emit"]),
           "trans": fold_array_sum([m["trans"] for m in messages])}
    for message in messages[1:]:
        for word, count in message["emit"].items():
            out["emit"][word] = out["emit"].get(word, 0.0) + count
    return out


class GiraphHMMDocument(Implementation):
    platform = "giraph"
    model = "hmm"
    variant = "document"

    #: Supersteps per Gibbs iteration: data resample + state update.
    SUPERSTEPS = 2

    def __init__(self, documents: list, vocabulary: int, states: int,
                 rng: np.random.Generator, cluster_spec: ClusterSpec,
                 tracer: Tracer | None = None, alpha: float = hmm.DEFAULT_ALPHA,
                 beta: float = hmm.DEFAULT_BETA) -> None:
        self.documents = [np.asarray(d, dtype=int) for d in documents]
        self.vocabulary = vocabulary
        self.states = states
        self.rng = rng
        self.alpha = alpha
        self.beta = beta
        self.engine = GiraphEngine(cluster_spec, tracer=tracer)
        self.model: hmm.HMMState | None = None
        self._iteration = 0

    def _data_values(self) -> dict:
        rng = self.rng
        return {
            d_id: {"words": words,
                   "states": rng.integers(self.states, size=len(words))}
            for d_id, words in enumerate(self.documents)
        }

    def initialize(self) -> None:
        engine = self.engine
        engine.add_vertex_kind("data", scale=DATA)
        engine.add_vertex_kind("state")
        engine.add_vertices("data", self._data_values())
        self.model = hmm.initial_model(self.rng, self.states, self.vocabulary,
                                       self.alpha, self.beta)
        engine.add_vertices("state", {
            s: {"psi": self.model.psi[s], "delta": self.model.delta[s]}
            for s in range(self.states)
        })
        engine.set_combiner("state", _merge_state_counts,
                            batch_fn=_merge_state_counts_batch)
        engine.register_aggregator("delta0", lambda a, b: a + b,
                                   np.zeros(self.states))
        engine.set_compute("data", self._data_compute,
                           batch_fn=self._data_compute_batch)
        engine.set_compute("state", self._state_compute)

    def iterate(self, iteration: int) -> None:
        self._iteration = iteration
        for _ in range(self.SUPERSTEPS):
            self.engine.superstep()
        self._refresh_model()

    # -- vertex programs ---------------------------------------------------

    def _data_compute(self, ctx, vid, value, messages):
        if ctx.superstep % self.SUPERSTEPS != 0:
            return
        model = self._current_model(ctx)
        words, states = value["words"], value["states"]
        updated = hmm.resample_document_states(self.rng, words, states, model,
                                               self._iteration)
        value["states"] = updated
        counts = hmm.document_counts(words, updated, self.states, self.vocabulary)
        # Hand-coded Java inner loop: ~4 JVM operations per word
        # (calibrated to the paper's 11:02 document-based entry).
        ctx.charge_ops(float(len(words) * 4))
        for s in range(self.states):
            ctx.send("state", s, _sparse_counts(counts, s))
        ctx.aggregate("delta0", counts.starts)

    def _data_compute_batch(self, ctx, items):
        """All documents' FFBS sweeps through one stacked categorical
        draw; per-vertex side effects replay in vertex order."""
        if ctx.superstep % self.SUPERSTEPS != 0:
            return
        model = self._current_model(ctx)
        values = [(value["words"], value["states"]) for _, value, _ in items]
        updated = hmm.resample_documents_batch(self.rng, values, model,
                                               self._iteration)
        for (vid, value, _), states in zip(items, updated):
            ctx._current_vertex = vid
            value["states"] = states
            words = value["words"]
            counts = hmm.document_counts(words, states, self.states,
                                         self.vocabulary)
            ctx.charge_ops(float(len(words) * 4))
            for s in range(self.states):
                ctx.send("state", s, _sparse_counts(counts, s))
            ctx.aggregate("delta0", counts.starts)

    def _state_compute(self, ctx, vid, value, messages):
        if ctx.superstep % self.SUPERSTEPS != 1:
            return
        emissions = np.zeros(self.vocabulary)
        transitions = np.zeros(self.states)
        for message in messages:
            for word, count in message["emit"].items():
                emissions[word] += count
            transitions += message["trans"]
        value["psi"] = hmm.resample_emission_row(self.rng, self.beta, emissions)
        value["delta"] = hmm.resample_transition_row(self.rng, self.alpha,
                                                     transitions)
        ctx.charge_flops(float(self.vocabulary * 20))
        ctx.send_to_kind("data", ("model-row", vid, value["psi"], value["delta"]))

    def _current_model(self, ctx) -> hmm.HMMState:
        """The model the data vertices see this superstep.

        psi/delta rows were broadcast by the state vertices (and mirrored
        into ``self.model`` by ``_refresh_model``); delta0 comes from the
        global aggregator and is drawn once per superstep.
        """
        assert self.model is not None
        starts = ctx.aggregated("delta0")
        if np.any(starts > 0) and getattr(self, "_delta0_superstep", -1) != ctx.superstep:
            self.model.delta0 = hmm.resample_delta0(self.rng, self.alpha, starts)
            self._delta0_superstep = ctx.superstep
        return self.model

    def _refresh_model(self) -> None:
        assert self.model is not None
        for s in range(self.states):
            vertex = self.engine.vertex_value("state", s)
            self.model.psi[s] = vertex["psi"]
            self.model.delta[s] = vertex["delta"]

    def assignments(self) -> list:
        return [self.engine.vertex_value("data", d)["states"]
                for d in range(len(self.documents))]


class GiraphHMMSuperVertex(GiraphHMMDocument):
    variant = "super-vertex"

    def __init__(self, documents, vocabulary, states, rng, cluster_spec,
                 tracer=None, alpha=hmm.DEFAULT_ALPHA, beta=hmm.DEFAULT_BETA,
                 docs_per_block: int = 16) -> None:
        super().__init__(documents, vocabulary, states, rng, cluster_spec,
                         tracer, alpha, beta)
        self.docs_per_block = docs_per_block

    def scale_groups(self) -> tuple[str, ...]:
        return ("data", "sv")

    def initialize(self) -> None:
        super().initialize()
        self.engine.kinds["data"].edge_scale = "sv"

    def _data_values(self) -> dict:
        rng = self.rng
        blocks = group_items(list(range(len(self.documents))),
                             max(1, len(self.documents) // self.docs_per_block))
        return {
            b: {"docs": block,
                "words": [self.documents[d] for d in block],
                "states": [rng.integers(self.states, size=len(self.documents[d]))
                           for d in block]}
            for b, block in enumerate(blocks)
        }

    def _data_compute(self, ctx, vid, value, messages):
        if ctx.superstep % self.SUPERSTEPS != 0:
            return
        model = self._current_model(ctx)
        counts = hmm.HMMCounts.zeros(self.states, self.vocabulary)
        total_words = 0
        for slot, (words, states) in enumerate(zip(value["words"], value["states"])):
            updated = hmm.resample_document_states(self.rng, words, states, model,
                                                   self._iteration)
            value["states"][slot] = updated
            counts = counts.merge(
                hmm.document_counts(words, updated, self.states, self.vocabulary))
            total_words += len(words)
        # The super-vertex rewrite drives the per-word cost down to ~1
        # JVM operation (the paper's 2:27-per-iteration code).
        ctx.charge_ops(float(total_words * 1))
        for s in range(self.states):
            ctx.send("state", s, _sparse_counts(counts, s))
        ctx.aggregate("delta0", counts.starts)

    def _data_compute_batch(self, ctx, items):
        """Every block's documents flatten (vertex order, then slot
        order) into one stacked FFBS draw — the same document order the
        scalar loop visits."""
        if ctx.superstep % self.SUPERSTEPS != 0:
            return
        model = self._current_model(ctx)
        values = [(words, states) for _, value, _ in items
                  for words, states in zip(value["words"], value["states"])]
        updated = iter(hmm.resample_documents_batch(self.rng, values, model,
                                                    self._iteration))
        for vid, value, _ in items:
            ctx._current_vertex = vid
            counts = hmm.HMMCounts.zeros(self.states, self.vocabulary)
            total_words = 0
            for slot, words in enumerate(value["words"]):
                states = next(updated)
                value["states"][slot] = states
                counts = counts.merge(hmm.document_counts(
                    words, states, self.states, self.vocabulary))
                total_words += len(words)
            ctx.charge_ops(float(total_words * 1))
            for s in range(self.states):
                ctx.send("state", s, _sparse_counts(counts, s))
            ctx.aggregate("delta0", counts.starts)

    def assignments(self) -> list:
        out: dict[int, np.ndarray] = {}
        for vertex in self.engine.kinds["data"].values.values():
            for doc_id, states in zip(vertex["docs"], vertex["states"]):
                out[doc_id] = states
        return [out[d] for d in range(len(self.documents))]


class GiraphHMMWord(Implementation):
    """One vertex per word — the granularity that Fails at paper scale."""

    platform = "giraph"
    model = "hmm"
    variant = "word"

    SUPERSTEPS = 3

    def __init__(self, documents: list, vocabulary: int, states: int,
                 rng: np.random.Generator, cluster_spec: ClusterSpec,
                 tracer: Tracer | None = None, alpha: float = hmm.DEFAULT_ALPHA,
                 beta: float = hmm.DEFAULT_BETA) -> None:
        self.documents = [np.asarray(d, dtype=int) for d in documents]
        self.vocabulary = vocabulary
        self.states = states
        self.rng = rng
        self.alpha = alpha
        self.beta = beta
        self.engine = GiraphEngine(cluster_spec, tracer=tracer)
        self.model: hmm.HMMState | None = None
        self._iteration = 0

    def scale_groups(self) -> tuple[str, ...]:
        return ("data",)

    def initialize(self) -> None:
        engine, rng = self.engine, self.rng
        engine.add_vertex_kind("word", scale=DATA)
        engine.add_vertex_kind("state")
        vertices = {}
        for d_id, words in enumerate(self.documents):
            length = len(words)
            for pos, word in enumerate(words):
                vertices[(d_id, pos)] = {
                    "word": int(word), "state": int(rng.integers(self.states)),
                    "len": length, "prev": None, "next": None,
                }
        engine.add_vertices("word", vertices)
        self.model = hmm.initial_model(rng, self.states, self.vocabulary,
                                       self.alpha, self.beta)
        engine.add_vertices("state", {
            s: {"psi": self.model.psi[s], "delta": self.model.delta[s]}
            for s in range(self.states)
        })
        engine.set_combiner("state", _merge_pair_counts,
                            batch_fn=_merge_pair_counts_batch)
        engine.register_aggregator("delta0", lambda a, b: a + b,
                                   np.zeros(self.states))
        engine.set_compute("word", self._word_compute,
                           batch_fn=self._word_compute_batch)
        engine.set_compute("state", self._state_compute)

    def iterate(self, iteration: int) -> None:
        self._iteration = iteration
        for _ in range(self.SUPERSTEPS):
            self.engine.superstep()
        for s in range(self.states):
            vertex = self.engine.vertex_value("state", s)
            self.model.psi[s] = vertex["psi"]
            self.model.delta[s] = vertex["delta"]

    def _word_compute(self, ctx, vid, value, messages):
        phase = ctx.superstep % self.SUPERSTEPS
        d_id, pos = vid
        if phase == 0:
            # Tell the neighbors (by the naming scheme, no edges stored).
            if pos + 1 < value["len"]:
                ctx.send("word", (d_id, pos + 1), ("prev", value["state"]))
            if pos > 0:
                ctx.send("word", (d_id, pos - 1), ("next", value["state"]))
            return
        if phase == 1:
            for kind, state in messages:
                value[kind] = state
            prev_state = (value["prev"]
                          if value["prev"] is not None and pos > 0 else None)
            next_state = (value["next"]
                          if value["next"] is not None and pos < value["len"] - 1
                          else None)
            if (pos + 1) % 2 == self._iteration % 2:
                weights = hmm.word_state_weights(self.model, value["word"],
                                                 prev_state, next_state)
                value["state"] = int(self.rng.choice(self.states,
                                                     p=weights / weights.sum()))
                ctx.charge_ops(4.0)
            # The paper's tiny pair messages: <word, 1> and <next-state, 1>
            # to the (current state)'th state vertex, dict-combined.
            if pos == 0:
                ctx.aggregate("delta0", _one_hot(value["state"], self.states))
            pair_counts = {"emit": {value["word"]: 1.0}, "trans": {}}
            if next_state is not None:
                pair_counts["trans"][next_state] = 1.0
            ctx.send("state", value["state"], pair_counts)

    def _word_compute_batch(self, ctx, items):
        """The resample phase's per-vertex ``rng.choice`` calls merge
        into one stacked categorical draw over the parity turns' weight
        rows; message application and count sends replay in vertex
        order.  The other phases have no batchable work."""
        phase = ctx.superstep % self.SUPERSTEPS
        if phase != 1:
            for vid, value, messages in items:
                ctx._current_vertex = vid
                self._word_compute(ctx, vid, value, messages)
            return
        rows = []
        draw_at: dict[int, int] = {}
        neighbors = []
        for index, (vid, value, messages) in enumerate(items):
            for kind, state in messages:
                value[kind] = state
            _, pos = vid
            prev_state = (value["prev"]
                          if value["prev"] is not None and pos > 0 else None)
            next_state = (value["next"]
                          if value["next"] is not None
                          and pos < value["len"] - 1 else None)
            neighbors.append(next_state)
            if (pos + 1) % 2 == self._iteration % 2:
                draw_at[index] = len(rows)
                rows.append(hmm.word_state_weights(self.model, value["word"],
                                                   prev_state, next_state))
        draws = (sample_categorical_rows(self.rng, np.vstack(rows))
                 if rows else [])
        for index, (vid, value, _) in enumerate(items):
            ctx._current_vertex = vid
            _, pos = vid
            if index in draw_at:
                value["state"] = int(draws[draw_at[index]])
                ctx.charge_ops(4.0)
            if pos == 0:
                ctx.aggregate("delta0", _one_hot(value["state"], self.states))
            pair_counts = {"emit": {value["word"]: 1.0}, "trans": {}}
            next_state = neighbors[index]
            if next_state is not None:
                pair_counts["trans"][next_state] = 1.0
            ctx.send("state", value["state"], pair_counts)

    def _state_compute(self, ctx, vid, value, messages):
        if ctx.superstep % self.SUPERSTEPS != 2:
            return
        emissions = np.zeros(self.vocabulary)
        transitions = np.zeros(self.states)
        for message in messages:
            for word, count in message["emit"].items():
                emissions[word] += count
            for nxt, count in message["trans"].items():
                transitions[nxt] += count
        value["psi"] = hmm.resample_emission_row(self.rng, self.beta, emissions)
        value["delta"] = hmm.resample_transition_row(self.rng, self.alpha,
                                                     transitions)
        ctx.send_to_kind("word", ("model-row", vid, value["psi"], value["delta"]))
        starts = ctx.aggregated("delta0")
        if vid == 0 and np.any(starts > 0):
            self.model.delta0 = hmm.resample_delta0(self.rng, self.alpha, starts)


def _one_hot(index: int, size: int) -> np.ndarray:
    out = np.zeros(size)
    out[index] = 1.0
    return out


def _merge_pair_counts(a: dict, b: dict) -> dict:
    """Combiner for the word-based code's sparse pair-count messages."""
    out = {"emit": dict(a["emit"]), "trans": dict(a["trans"])}
    for word, count in b["emit"].items():
        out["emit"][word] = out["emit"].get(word, 0.0) + count
    for nxt, count in b["trans"].items():
        out["trans"][nxt] = out["trans"].get(nxt, 0.0) + count
    return out


def _merge_pair_counts_batch(messages: list) -> dict:
    """Left fold of :func:`_merge_pair_counts`: one accumulator copy,
    same first-occurrence key order and per-key addition order."""
    out = {"emit": dict(messages[0]["emit"]),
           "trans": dict(messages[0]["trans"])}
    for message in messages[1:]:
        for word, count in message["emit"].items():
            out["emit"][word] = out["emit"].get(word, 0.0) + count
        for nxt, count in message["trans"].items():
            out["trans"][nxt] = out["trans"].get(nxt, 0.0) + count
    return out
