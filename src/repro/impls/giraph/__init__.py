"""Giraph implementations of the five benchmark models."""

from repro.impls.giraph.gmm import GiraphGMM, GiraphGMMSuperVertex
from repro.impls.giraph.hmm import GiraphHMMDocument, GiraphHMMSuperVertex, GiraphHMMWord
from repro.impls.giraph.imputation import GiraphImputation
from repro.impls.giraph.lasso import GiraphLasso, GiraphLassoSuperVertex
from repro.impls.giraph.lda import GiraphLDADocument, GiraphLDASuperVertex

__all__ = [
    "GiraphGMM",
    "GiraphGMMSuperVertex",
    "GiraphHMMDocument",
    "GiraphHMMSuperVertex",
    "GiraphHMMWord",
    "GiraphImputation",
    "GiraphLDADocument",
    "GiraphLDASuperVertex",
    "GiraphLasso",
    "GiraphLassoSuperVertex",
]
