"""Spark LDA implementations (paper Section 8, Figures 4 and 6).

``SparkLDADocument`` resamples all of a document's topic assignments
(and its theta) in one map callback and flat-maps the document's sparse
per-topic word counts for aggregation; phi is resampled from the
aggregated counts.  ``SparkLDASuperVertex`` does the same per partition
block with combined counts.  ``SparkLDAJava`` is the Figure 6 variant:
identical simulation, Java callback and Mallet linear-algebra costs.

All sampler math comes from :mod:`repro.kernels.lda` and the sparse
count folds from :mod:`repro.kernels.folds`; this module only maps the
kernels onto RDD operations.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.events import FIXED, Kind, Site
from repro.cluster.machine import ClusterSpec
from repro.cluster.tracer import Tracer
from repro.dataflow import SparkContext
from repro.impls.base import Implementation, declare_scale_limit
from repro.kernels import lda
from repro.kernels.folds import (
    merge_sparse,
    merge_sparse_batch,
    sparse_topic_counts,
    sparse_topic_counts_fast,
)


class SparkLDADocument(Implementation):
    platform = "spark"
    model = "lda"
    variant = "document"

    def __init__(self, documents: list, vocabulary: int, topics: int,
                 rng: np.random.Generator, cluster_spec: ClusterSpec,
                 tracer: Tracer | None = None, alpha: float = lda.DEFAULT_ALPHA,
                 beta: float = lda.DEFAULT_BETA, language: str = "python") -> None:
        self.documents = [np.asarray(d, dtype=int) for d in documents]
        self.vocabulary = vocabulary
        self.topics = topics
        self.rng = rng
        self.alpha = alpha
        self.beta = beta
        self.sc = SparkContext(cluster_spec, tracer=tracer, language=language)
        self.docs = None
        self.phi: np.ndarray | None = None

    def initialize(self) -> None:
        rng, topics = self.rng, self.topics
        mean_len = max(1, int(np.mean([len(d) for d in self.documents])))
        self.phi = lda.initial_phi(rng, topics, self.vocabulary, self.beta)
        thetas = lda.initial_thetas(rng, len(self.documents), topics, self.alpha)
        records = [
            (d_id, (doc, thetas[d_id])) for d_id, doc in enumerate(self.documents)
        ]
        self.docs = self.sc.text_file(
            records, bytes_per_record=mean_len * 6.0 + topics * 8.0,
        ).cache()
        self.docs.count()
        self.sc.driver_compute(flops=topics * self.vocabulary * 10.0, label="init-phi")

    def iterate(self, iteration: int) -> None:
        assert self.phi is not None
        phi, rng, alpha = self.phi, self.rng, self.alpha
        topics, vocab = self.topics, self.vocabulary
        mean_len = max(1, int(np.mean([len(d) for d in self.documents])))

        # Job 1: per-document z/theta resample, emitting sparse counts.
        def resample_doc(value):
            words, theta = value
            z, new_theta, _ = lda.resample_document(rng, words, theta, phi, alpha)
            return ((words, new_theta), sparse_topic_counts(z, words))

        def resample_doc_batch(values):
            # Vectorized resample_doc over a partition's documents; the
            # batch kernel keeps the per-document RNG calls interleaved
            # in document order, so every draw matches the scalar path
            # bitwise.  Only the sparse record packing happens here.
            draws = lda.resample_documents_batch(rng, values, phi, alpha)
            return [((words, new_theta), sparse_topic_counts_fast(z, words))
                    for (words, _), (z, new_theta) in zip(values, draws)]

        # Per word: the topic draw over 100 topics is several interpreted
        # operations in Python (the paper's ~16-hour document-based
        # entry); the Java variant runs it as tight array loops.
        java = self.sc.language == "java"
        old = self.docs
        resampled = old.map_values(
            resample_doc, batch_fn=resample_doc_batch,
            flops_per_record=float(mean_len * topics * 4),
            ops_per_record=float(mean_len * (1 if java else 10)),
            language="jvm" if java else None,
            closure_bytes=topics * vocab * 8.0, label="resample_doc",
        ).cache()
        resampled.count()

        counts_rdd = resampled.flat_map(
            lambda record: record[1][1], label="emit-counts", out_scale="data",
        ).reduce_by_key(merge_sparse, batch_combiner=merge_sparse_batch,
                        flops_per_record=float(mean_len),
                        label="g-agg")
        g = counts_rdd.collect_as_map()

        self.docs = resampled.map_values(lambda v: v[0], label="strip-counts").cache()
        self.docs.count()
        resampled.unpersist()
        old.unpersist()

        totals = np.zeros((topics, vocab))
        for topic, sparse in g.items():
            for word, count in sparse.items():
                totals[topic, word] = count
        self.phi = lda.resample_phi(rng, totals, self.beta)
        self.sc.driver_compute(flops=topics * vocab * 20.0, label="sample-phi")

    def thetas(self) -> dict:
        """Current per-document theta (for validation)."""
        return {d_id: value[1] for d_id, value in self.docs.collect()}


class SparkLDAJava(SparkLDADocument):
    """Figure 6: the LDA simulation with Java callbacks and Mallet.

    The paper could not run it on 100 machines (and saw it die on 20
    after 18 iterations); the 100-machine limit is declared, the
    20-machine flakiness is noted in EXPERIMENTS.md.
    """

    variant = "java"

    def __init__(self, documents, vocabulary, topics, rng, cluster_spec,
                 tracer=None, alpha=lda.DEFAULT_ALPHA, beta=lda.DEFAULT_BETA) -> None:
        super().__init__(documents, vocabulary, topics, rng, cluster_spec,
                         tracer, alpha, beta, language="java")

    def iterate(self, iteration: int) -> None:
        declare_scale_limit(self.sc.tracer, self.sc.cluster, 0.7, "spark-lda-java")
        super().iterate(iteration)


class SparkLDASuperVertex(SparkLDADocument):
    """Figure 4(b): per-partition blocks with pre-aggregated counts.

    Could not be run at 100 machines in the paper (no mechanism given);
    the limit is declared.
    """

    variant = "super-vertex"

    def iterate(self, iteration: int) -> None:
        declare_scale_limit(self.sc.tracer, self.sc.cluster, 0.7,
                            "spark-lda-super-vertex")
        assert self.phi is not None
        phi, rng, alpha = self.phi, self.rng, self.alpha
        topics, vocab = self.topics, self.vocabulary
        mean_len = max(1, int(np.mean([len(d) for d in self.documents])))
        n_per_part = max(1, len(self.documents) // self.docs.num_partitions)

        accumulated: list[np.ndarray] = []

        def process_block(block):
            totals = np.zeros((topics, vocab))
            out = []
            for d_id, (words, theta) in block:
                z, new_theta, counts = lda.resample_document(rng, words, theta,
                                                             phi, alpha)
                totals += counts
                out.append((d_id, (words, new_theta)))
            accumulated.append(totals)
            return out

        # The super-vertex grouping vectorizes the count handling but a
        # per-word interpreted core remains (paper: ~3:56 h vs ~15:45 h
        # for the document-based code); the per-partition count matrices
        # travel through an accumulator.
        block_flops = float(n_per_part * mean_len * topics * 4)
        old = self.docs
        self.docs = old.map_partitions(
            process_block, flops_per_partition=block_flops,
            ops_per_partition=float(n_per_part * mean_len * 2.5),
            closure_bytes=topics * vocab * 8.0, label="block_resample",
        ).cache()
        self.docs.count()
        old.unpersist()
        self.sc.tracer.emit(
            Kind.MESSAGE, records=self.docs.num_partitions,
            bytes=self.docs.num_partitions * topics * vocab * 8.0,
            language=self.sc.language, scale=FIXED, site=Site.MACHINE,
            label="block-counts-accumulator",
        )

        totals = np.zeros((topics, vocab))
        for block_counts in accumulated:
            totals += block_counts
        self.phi = lda.resample_phi(rng, totals, self.beta)
        self.sc.driver_compute(flops=topics * vocab * 20.0, label="sample-phi")
