"""Spark implementations of the five benchmark models."""

from repro.impls.spark.gmm import SparkGMM, SparkGMMJava, SparkGMMSuperVertex
from repro.impls.spark.hmm import SparkHMMDocument, SparkHMMSuperVertex, SparkHMMWord
from repro.impls.spark.imputation import SparkImputation
from repro.impls.spark.lasso import SparkLasso, SparkLassoJava
from repro.impls.spark.lda import SparkLDADocument, SparkLDAJava, SparkLDASuperVertex

__all__ = [
    "SparkGMM",
    "SparkGMMJava",
    "SparkGMMSuperVertex",
    "SparkHMMDocument",
    "SparkHMMSuperVertex",
    "SparkHMMWord",
    "SparkImputation",
    "SparkLDADocument",
    "SparkLDAJava",
    "SparkLDASuperVertex",
    "SparkLasso",
    "SparkLassoJava",
]
