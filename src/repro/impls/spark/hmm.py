"""Spark HMM implementations (paper Section 7.1, Figure 3).

``SparkHMMDocument`` is the paper's document-based code: the RDD keeps
one record per document holding its (word, state) sequence; per
iteration, two aggregation jobs rebuild the transition/start counts and
the emission counts, and a map job resamples the alternating-parity
states.

``SparkHMMWord`` is the word-based attempt the paper **could not get to
run**: every word is its own record and collecting each word's neighbor
states requires shuffling the full word-level dataset against itself.
The code is semantically correct at laptop scale; at paper scale the
word-level shuffle buffers exhaust memory, which is how the table's
entry is reproduced.

``SparkHMMSuperVertex`` groups many documents per partition and updates
them with one vectorized callback (Figure 3(b)).

All sampler math comes from :mod:`repro.kernels.hmm` and the sparse
count folds from :mod:`repro.kernels.folds`; this module only maps the
kernels onto RDD operations.
"""

from __future__ import annotations

import numpy as np

from repro import fastpath
from repro.cluster.events import FIXED, Kind, Site
from repro.cluster.machine import ClusterSpec
from repro.cluster.tracer import Tracer
from repro.dataflow import SparkContext
from repro.impls.base import Implementation, declare_scale_limit
from repro.kernels import hmm
from repro.kernels.folds import (
    fold_array_sum,
    merge_sparse,
    merge_sparse_batch,
    sparse_topic_counts,
    sparse_topic_counts_fast,
)
from repro.stats import sample_categorical_rows


class SparkHMMDocument(Implementation):
    platform = "spark"
    model = "hmm"
    variant = "document"

    def __init__(self, documents: list, vocabulary: int, states: int,
                 rng: np.random.Generator, cluster_spec: ClusterSpec,
                 tracer: Tracer | None = None, alpha: float = hmm.DEFAULT_ALPHA,
                 beta: float = hmm.DEFAULT_BETA, language: str = "python") -> None:
        self.documents = [np.asarray(d, dtype=int) for d in documents]
        self.vocabulary = vocabulary
        self.states = states
        self.rng = rng
        self.alpha = alpha
        self.beta = beta
        self.sc = SparkContext(cluster_spec, tracer=tracer, language=language)
        self.d_w_s_seq = None
        self.model: hmm.HMMState | None = None

    def scale_groups(self) -> tuple[str, ...]:
        return ("data",)

    def initialize(self) -> None:
        mean_len = max(1, int(np.mean([len(d) for d in self.documents])))
        d_w_seq = self.sc.text_file(
            list(enumerate(self.documents)), bytes_per_record=mean_len * 6.0,
        )
        rng, states = self.rng, self.states
        self.d_w_s_seq = d_w_seq.map_values(
            lambda words: (words, rng.integers(states, size=len(words))),
            flops_per_record=float(mean_len), label="init_state",
        ).cache()
        self.d_w_s_seq.count()  # materialize
        self.model = hmm.initial_model(rng, states, self.vocabulary, self.alpha, self.beta)
        self.sc.driver_compute(flops=states * self.vocabulary * 10.0, label="init-model")

    def iterate(self, iteration: int) -> None:
        assert self.model is not None
        model, rng = self.model, self.rng
        states_k, vocab = self.states, self.vocabulary
        mean_len = max(1, int(np.mean([len(d) for d in self.documents])))

        # Jobs 1+2: per-document transition/start counts, aggregated per
        # state, then the delta rows resampled.
        def comp_h(doc_value):
            words, states = doc_value
            counts = hmm.document_counts(words, states, states_k, vocab)
            out = [(s, counts.transitions[s]) for s in range(states_k)]
            out.append(("start", counts.starts))
            return out

        h = self.d_w_s_seq.flat_map(
            lambda record: comp_h(record[1]), flops_per_record=float(mean_len),
            label="comp_h", out_scale="data",
        ).reduce_by_key(lambda a, b: a + b, flops_per_record=float(states_k),
                        label="h-agg", batch_combiner=fold_array_sum)
        h_map = h.collect_as_map()

        # Jobs 3+4: emission counts per state (sparse per document — a
        # dense vocabulary row per document would be a 10k-float record)
        # then the psi rows resampled.
        def comp_f(doc_value):
            words, states = doc_value
            return sparse_topic_counts(states, words)

        f = self.d_w_s_seq.flat_map(
            lambda record: comp_f(record[1]), flops_per_record=float(mean_len),
            label="comp_f", out_scale="data",
            batch_fn=lambda part: [
                o for record in part
                for o in sparse_topic_counts_fast(record[1][1], record[1][0])
            ],
        ).reduce_by_key(merge_sparse, flops_per_record=float(mean_len),
                        label="f-agg", batch_combiner=merge_sparse_batch)
        f_map = f.collect_as_map()

        counts = hmm.HMMCounts.zeros(states_k, vocab)
        for s in range(states_k):
            counts.transitions[s] = h_map.get(s, np.zeros(states_k))
            for word, count in f_map.get(s, {}).items():
                counts.emissions[s, word] = count
        counts.starts = h_map.get("start", np.zeros(states_k))
        self.model = hmm.resample_model(rng, counts, self.alpha, self.beta)
        model = self.model
        self.sc.driver_compute(flops=states_k * vocab * 20.0, label="sample-model")

        # Job 5: alternating-parity state update per document.
        # The paper's update_state walks the document word-by-word in
        # Python: ~2 interpreted operations per word.
        def update_batch(values):
            updated = hmm.resample_documents_batch(rng, values, model, iteration)
            return [(words, new_states)
                    for (words, _), new_states in zip(values, updated)]

        old = self.d_w_s_seq
        self.d_w_s_seq = old.map_values(
            lambda value: (value[0], hmm.resample_document_states(
                rng, value[0], value[1], model, iteration)),
            flops_per_record=float(mean_len * states_k * 3),
            ops_per_record=float(2 * mean_len),
            closure_bytes=states_k * (vocab + states_k + 1) * 8.0,
            label="update_state", batch_fn=update_batch,
        ).cache()
        self.d_w_s_seq.count()  # materialize before dropping the parent
        old.unpersist()

    def assignments(self) -> dict:
        """Current state assignments per document id (for validation)."""
        return {d_id: value[1] for d_id, value in self.d_w_s_seq.collect()}


class SparkHMMSuperVertex(SparkHMMDocument):
    """Figure 3(b): documents processed in per-partition blocks with one
    vectorized callback per block.

    The paper could not get this code to run on 100 machines and names
    no mechanism; the limit is declared (see
    :func:`repro.impls.base.declare_scale_limit`).
    """

    variant = "super-vertex"

    def iterate(self, iteration: int) -> None:
        declare_scale_limit(self.sc.tracer, self.sc.cluster, 0.7,
                            "spark-hmm-super-vertex")
        assert self.model is not None
        model, rng = self.model, self.rng
        states_k, vocab = self.states, self.vocabulary
        mean_len = max(1, int(np.mean([len(d) for d in self.documents])))
        n_per_part = max(1, len(self.documents) // self.d_w_s_seq.num_partitions)

        # One block job: resample states, pre-aggregating the counts
        # inside the "hand-coded" callback; the per-partition summaries
        # travel through an accumulator (one fixed-size record per
        # partition), not through the data RDD.
        accumulated: list[hmm.HMMCounts] = []

        def process_block(block):
            counts = hmm.HMMCounts.zeros(states_k, vocab)
            out = []
            if fastpath.enabled() and len(block) > 1:
                values = [value for _, value in block]
                updated_all = hmm.resample_documents_batch(rng, values, model,
                                                           iteration)
                for (d_id, (words, _)), updated in zip(block, updated_all):
                    counts = counts.merge(
                        hmm.document_counts(words, updated, states_k, vocab))
                    out.append((d_id, (words, updated)))
            else:
                for d_id, (words, states) in block:
                    updated = hmm.resample_document_states(rng, words, states,
                                                           model, iteration)
                    counts = counts.merge(
                        hmm.document_counts(words, updated, states_k, vocab))
                    out.append((d_id, (words, updated)))
            accumulated.append(counts)
            return out

        # The paper's super-vertex Spark HMM barely improved on the
        # document-based code (3:45:58 vs 4:21:36) — the per-word Python
        # work survives the grouping.
        block_flops = float(n_per_part * mean_len * states_k * 4)
        old = self.d_w_s_seq
        self.d_w_s_seq = old.map_partitions(
            process_block, flops_per_partition=block_flops,
            ops_per_partition=float(n_per_part * mean_len * 1.7),
            closure_bytes=states_k * (vocab + states_k + 1) * 8.0,
            label="block_update",
        ).cache()
        self.d_w_s_seq.count()
        old.unpersist()
        # Accumulator fan-in: one (K x W)-sized summary per partition.
        self.sc.tracer.emit(
            Kind.MESSAGE, records=self.d_w_s_seq.num_partitions,
            bytes=self.d_w_s_seq.num_partitions * states_k * (vocab + states_k) * 8.0,
            language=self.sc.language, scale=FIXED, site=Site.MACHINE,
            label="block-counts-accumulator",
        )

        counts = hmm.HMMCounts.zeros(states_k, vocab)
        for block_counts in accumulated:
            counts = counts.merge(block_counts)
        self.model = hmm.resample_model(rng, counts, self.alpha, self.beta)
        self.sc.driver_compute(flops=states_k * vocab * 20.0, label="sample-model")


class SparkHMMWord(Implementation):
    """The word-based Spark HMM the paper could not run (Figure 3(a)).

    Every word is a record keyed by (document, position); gathering each
    word's neighbor states requires a full word-level self-shuffle
    (group_by_key over neighbor contributions).  Correct at laptop
    scale; at paper scale the ungrouped shuffle buffers are the failure.
    """

    platform = "spark"
    model = "hmm"
    variant = "word"

    def __init__(self, documents: list, vocabulary: int, states: int,
                 rng: np.random.Generator, cluster_spec: ClusterSpec,
                 tracer: Tracer | None = None, alpha: float = hmm.DEFAULT_ALPHA,
                 beta: float = hmm.DEFAULT_BETA) -> None:
        self.documents = [np.asarray(d, dtype=int) for d in documents]
        self.vocabulary = vocabulary
        self.states = states
        self.rng = rng
        self.alpha = alpha
        self.beta = beta
        self.sc = SparkContext(cluster_spec, tracer=tracer)
        self.words = None
        self.model: hmm.HMMState | None = None

    def scale_groups(self) -> tuple[str, ...]:
        return ("words",)

    def initialize(self) -> None:
        rng = self.rng
        records = []
        for d_id, doc in enumerate(self.documents):
            for k, word in enumerate(doc):
                records.append(((d_id, k), (int(word), int(rng.integers(self.states)),
                                            len(doc))))
        self.words = self.sc.text_file(records, bytes_per_record=40.0,
                                       scale="words").cache()
        self.words.count()
        self.model = hmm.initial_model(rng, self.states, self.vocabulary,
                                       self.alpha, self.beta)

    def iterate(self, iteration: int) -> None:
        assert self.model is not None
        model, rng, states_k = self.model, self.rng, self.states

        # The word-level self-shuffle: every word contributes its state
        # to its neighbors, then each position groups what it received.
        def neighbor_contributions(record):
            (d_id, k), (word, state, doc_len) = record
            out = [((d_id, k), ("self", word, state, doc_len))]
            out.append(((d_id, k + 1), ("prev", state)))
            if k > 0:
                out.append(((d_id, k - 1), ("next", state)))
            return out

        gathered = self.words.flat_map(
            neighbor_contributions, label="neighbor-emit", out_scale="words",
        ).group_by_key(label="word-self-shuffle")

        def resample(entry):
            (d_id, k), contributions = entry
            word = state = doc_len = None
            prev_state = next_state = None
            for item in contributions:
                if item[0] == "self":
                    _, word, state, doc_len = item
                elif item[0] == "prev":
                    prev_state = item[1]
                else:
                    next_state = item[1]
            if word is None:
                return None  # a (d, len) slot past the document end
            if (k + 1) % 2 != iteration % 2:
                return ((d_id, k), (word, state, doc_len))
            if k >= doc_len - 1:
                next_state = None  # the "next" contribution wrapped a document
            weights = hmm.word_state_weights(model, word, prev_state, next_state)
            new_state = int(rng.choice(states_k, p=weights / weights.sum()))
            return ((d_id, k), (word, new_state, doc_len))

        def resample_batch(entries):
            # The per-word weight rows carry no randomness, so they
            # assemble first and the state draws collapse into one
            # stacked categorical call — the same stream as the
            # sequential ``rng.choice`` draws.
            out = []
            pending = []
            rows = []
            for entry in entries:
                (d_id, k), contributions = entry
                word = state = doc_len = None
                prev_state = next_state = None
                for item in contributions:
                    if item[0] == "self":
                        _, word, state, doc_len = item
                    elif item[0] == "prev":
                        prev_state = item[1]
                    else:
                        next_state = item[1]
                if word is None:
                    out.append(None)
                    continue
                if (k + 1) % 2 != iteration % 2:
                    out.append(((d_id, k), (word, state, doc_len)))
                    continue
                if k >= doc_len - 1:
                    next_state = None
                rows.append(hmm.word_state_weights(model, word, prev_state,
                                                   next_state))
                pending.append((len(out), (d_id, k), word, doc_len))
                out.append(None)
            if rows:
                draws = sample_categorical_rows(rng, np.vstack(rows))
                for (i, key, word, doc_len), s in zip(pending, draws):
                    out[i] = (key, (word, int(s), doc_len))
            return out

        old = self.words
        self.words = gathered.map(
            resample, flops_per_record=float(states_k * 4), label="word-resample",
            out_scale="words", batch_fn=resample_batch,
        ).filter(lambda r: r is not None, label="drop-empty").cache()
        self.words.count()
        old.unpersist()

        # Model update from word-level aggregations.
        emis = self.words.map(
            lambda r: ((r[1][1], r[1][0]), 1.0), label="emit-f",
        ).reduce_by_key(lambda a, b: a + b, label="f-agg").collect()
        starts = self.words.filter(lambda r: r[0][1] == 0, label="starts").map(
            lambda r: (r[1][1], 1.0), label="emit-g",
        ).reduce_by_key(lambda a, b: a + b, label="g-agg").collect()

        trans = self.words.map(
            lambda r: ((r[0][0], r[0][1] + 1), r[1][1]), label="shift",
        ).join(self.words, label="transition-join").map(
            lambda kv: ((kv[1][0], kv[1][1][1]), 1.0), label="emit-h",
        ).reduce_by_key(lambda a, b: a + b, label="h-agg").collect()

        counts = hmm.HMMCounts.zeros(states_k, self.vocabulary)
        for (s, w), c in emis:
            counts.emissions[s, w] = c
        for s, c in starts:
            counts.starts[s] = c
        for (s_prev, s_next), c in trans:
            counts.transitions[s_prev, s_next] = c
        self.model = hmm.resample_model(rng, counts, self.alpha, self.beta)
