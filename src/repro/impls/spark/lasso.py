"""Spark Bayesian Lasso (paper Section 6.1, Figure 2).

The expensive part is initialization: the Gram matrix ``X^T X`` is
computed by flat-mapping every data point into p^2 ``((i, j), x_i x_j)``
pairs and reducing by key — the paper measures 1.5-2 hours of setup at
scale.  Each iteration then needs only one MapReduce job (the residual
sum of squares); the rest is small driver-side math.

Scale groups: the benchmark runs at a reduced regressor count, so the
Gram-flow events are labelled with the ``p``/``p2`` axes and the runner
scales them to the paper's 1000 dimensions.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.machine import ClusterSpec
from repro.cluster.tracer import Tracer
from repro.dataflow import SparkContext
from repro.impls.base import Implementation
from repro.kernels import lasso
from repro.kernels.folds import fold_scalar_sum


class SparkLasso(Implementation):
    platform = "spark"
    model = "lasso"
    variant = "initial"

    def __init__(self, x: np.ndarray, y: np.ndarray, rng: np.random.Generator,
                 cluster_spec: ClusterSpec, tracer: Tracer | None = None,
                 lam: float = lasso.DEFAULT_LAM, language: str = "python") -> None:
        self.x = np.asarray(x, dtype=float)
        self.y = np.asarray(y, dtype=float)
        self.rng = rng
        self.lam = lam
        self.sc = SparkContext(cluster_spec, tracer=tracer, language=language)
        self.data = None
        self.pre: lasso.LassoPrecomputed | None = None
        self.state: lasso.LassoState | None = None

    def scale_groups(self) -> tuple[str, ...]:
        return ("data", "p", "p2")

    def initialize(self) -> None:
        n, p = self.x.shape
        records = [(i, (self.x[i], self.y[i])) for i in range(n)]
        raw = self.sc.text_file(records, bytes_per_record=(p + 2) * 8.0).cache()

        # Center the response.
        y_sum = raw.map(lambda r: r[1][1], label="ys").sum()
        count = raw.count()
        y_avg = y_sum / count
        self.data = raw.map(
            lambda r: (r[0], (r[1][0], r[1][1] - y_avg)), label="center",
        ).cache()
        raw.unpersist()

        # Gram matrix: every point flat-maps into p^2 ((i, j), x_i x_j)
        # pairs (the paper's computePairSum), reduced by key.
        def compute_pair_sum(record):
            x_row = record[1][0]
            outer = np.outer(x_row, x_row)
            return [((i, j), outer[i, j]) for i in range(p) for j in range(p)]

        pair_keys = [(i, j) for i in range(p) for j in range(p)]

        def compute_pair_sum_batch(part):
            # One einsum for the whole partition; element products are the
            # same IEEE multiplies as np.outer, and zip over the flattened
            # row yields the same ((i, j), np.float64) records in order.
            rows = np.vstack([r[1][0] for r in part])
            outers = np.einsum("ni,nj->nij", rows, rows).reshape(len(part), -1)
            return [pair for row in outers for pair in zip(pair_keys, row)]

        def compute_xy_sum(record):
            x_row, y_c = record[1]
            return [(j, x_row[j] * y_c) for j in range(p)]

        def compute_xy_sum_batch(part):
            rows = np.vstack([r[1][0] for r in part])
            ys = np.array([r[1][1] for r in part])
            scaled = rows * ys[:, None]
            return [pair for row in scaled for pair in zip(range(p), row)]

        # The pair fan-out is bulk element work (an outer product sliced
        # into pairs), not one interpreted call per pair — charged at
        # vectorized rates, which is what makes the paper's 1.5-2 h Spark
        # initialization possible at all.
        xx = self.data.flat_map(
            compute_pair_sum, flops_per_record=float(p * p), language="numpy",
            out_scale="data*p2", label="computePairSum",
            batch_fn=compute_pair_sum_batch,
        ).reduce_by_key(lambda a, b: a + b, work_scale="data*p2",
                        language="numpy", out_scale="p2", label="gram",
                        batch_combiner=fold_scalar_sum)
        xy = self.data.flat_map(
            compute_xy_sum, flops_per_record=float(p), language="numpy",
            out_scale="data*p", label="computeXYSum",
            batch_fn=compute_xy_sum_batch,
        ).reduce_by_key(lambda a, b: a + b, work_scale="data*p",
                        language="numpy", out_scale="p", label="xty",
                        batch_combiner=fold_scalar_sum)

        xtx = np.zeros((p, p))
        for (i, j), value in xx.collect():
            xtx[i, j] = value
        xty = np.zeros(p)
        for j, value in xy.collect():
            xty[j] = value
        self.pre = lasso.LassoPrecomputed(xtx=xtx, xty=xty, y_mean=y_avg, n=n)
        self.state = lasso.initial_state(self.rng, p)

    def iterate(self, iteration: int) -> None:
        assert self.state is not None and self.pre is not None
        state, pre = self.state, self.pre
        p = state.p
        # Driver-side: tau and beta (small for low-to-medium p).
        state.tau2_inv = lasso.sample_tau2_inv(self.rng, state, self.lam)
        state.beta = lasso.sample_beta(self.rng, pre, state.tau2_inv, state.sigma2)
        self.sc.driver_compute(flops=float(p**3 + 40 * p), scale="fixed", label="beta")

        # The one distributed job: sum (y - beta . x)^2.
        beta = state.beta

        def remain_square_batch(part):
            # BLAS dgemv folds the dot in a different order than the
            # per-row ddot, so keep the scalar path's 1-D @ 1-D op and
            # vectorize only the subtract and square.
            dots = np.array([float(r[1][0] @ beta) for r in part])
            ys = np.array([r[1][1] for r in part])
            resid = ys - dots
            return list(resid * resid)

        rss = self.data.map(
            lambda r: (r[1][1] - float(r[1][0] @ beta)) ** 2,
            flops_per_record=2.0 * p, closure_bytes=p * 8.0,
            label="computeRemainSquare", batch_fn=remain_square_batch,
        ).sum()
        state.sigma2 = lasso.sample_sigma2(self.rng, pre.n, state, rss)


class SparkLassoJava(SparkLasso):
    """Java-callback variant (not in the paper's tables; used by the
    ablation benches)."""

    variant = "java"

    def __init__(self, x, y, rng, cluster_spec, tracer=None, lam=lasso.DEFAULT_LAM) -> None:
        super().__init__(x, y, rng, cluster_spec, tracer, lam, language="java")
