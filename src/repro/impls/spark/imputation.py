"""Spark Gaussian imputation (paper Section 9, Figure 5).

Structurally the GMM code plus one extra map that redraws the censored
coordinates — but that map *replaces the data RDD every iteration*, so
the cached input of the GMM jobs is invalidated and rebuilt each time.
This is the paper's Section 9.2 finding: "in the imputation model, the
actual data set changes constantly as imputation is being performed",
which is why Spark's time jumps from ~26 minutes (GMM) to ~1.5 hours.

All sampler math comes from :mod:`repro.kernels.gmm` and
:mod:`repro.kernels.imputation`; this module only maps the kernels onto
RDD operations.
"""

from __future__ import annotations

import numpy as np

from repro import fastpath
from repro.cluster.machine import ClusterSpec
from repro.cluster.tracer import Tracer
from repro.dataflow import SparkContext
from repro.impls.base import Implementation
from repro.kernels import gmm
from repro.kernels.imputation import (
    impute_point,
    marginal_membership_weights,
    scalar_marginal_weights,
)
from repro.stats import Categorical, MultivariateNormal
from repro.stats.mvn import ROW_STABLE_MAX_DIM


class SparkImputation(Implementation):
    platform = "spark"
    model = "imputation"
    variant = "initial"

    def __init__(self, censored_points: np.ndarray, mask: np.ndarray, clusters: int,
                 rng: np.random.Generator, cluster_spec: ClusterSpec,
                 tracer: Tracer | None = None, language: str = "python") -> None:
        self.censored = np.asarray(censored_points, dtype=float)
        self.mask = np.asarray(mask, dtype=bool)
        self.clusters = clusters
        self.rng = rng
        self.sc = SparkContext(cluster_spec, tracer=tracer, language=language)
        self.data = None
        self.prior: gmm.GMMPrior | None = None
        self.state: gmm.GMMState | None = None

    def initialize(self) -> None:
        d = self.censored.shape[1]
        column_means = np.nanmean(self.censored, axis=0)
        completed = self.censored.copy()
        fill = np.broadcast_to(column_means, completed.shape)
        completed[self.mask] = fill[self.mask]

        records = [(completed[j], self.mask[j]) for j in range(len(completed))]
        self.data = self.sc.text_file(
            records, bytes_per_record=d * 9.0 + 16.0,
        ).cache()
        num = self.data.count()
        total = self.data.reduce(lambda a, b: (a[0] + b[0], a[1]),
                                 flops_per_record=d)[0]
        hyper_mean = total / num
        sq_total = self.data.map(
            lambda r: ((r[0] - hyper_mean) ** 2, r[1]),
            flops_per_record=2.0 * d, label="sqdiff",
        ).reduce(lambda a, b: (a[0] + b[0], a[1]), flops_per_record=d)[0]
        variances = sq_total / num
        self.prior = gmm.GMMPrior(
            mu0=hyper_mean, lambda0=np.diag(1.0 / variances), psi=np.diag(variances),
            v=gmm.df_prior(d), alpha=np.full(self.clusters, gmm.DEFAULT_ALPHA),
        )
        self.state = gmm.initial_state(self.rng, self.prior)
        self.sc.driver_compute(flops=self.clusters * d**3, label="init-model")

    def iterate(self, iteration: int) -> None:
        assert self.state is not None and self.prior is not None
        state, prior, rng = self.state, self.prior, self.rng
        d = prior.dim
        clusters = self.clusters
        log_pi = np.log(state.pi)
        self.sc.driver_compute(flops=clusters * d**3, label="factor-model")

        # Job 1: membership from the observed coordinates, conditional
        # imputation, and the GMM statistics triple — one pass, but it
        # REPLACES the data RDD (the cache-defeating step).
        def impute_and_aggregate(record):
            x, mask = record
            weights = scalar_marginal_weights(x, mask, log_pi, state.means,
                                              state.covariances)
            k = Categorical(weights).sample(rng)
            completed = impute_point(rng, x, mask, state.means[k], state.covariances[k])
            diff = completed - state.means[k]
            return (k, completed, mask, np.outer(diff, diff))

        def impute_batch(records):
            # The draw pairs (membership, then conditional-normal impute)
            # stay interleaved per point; the marginal weights depend
            # only on last iteration's state, so they bulk-compute
            # upfront, and the conditional factorizations hoist per
            # (cluster, censoring-pattern) pair.
            if d > ROW_STABLE_MAX_DIM:
                # Stacked densities are not row-decomposable here.
                fastpath.record_decline("spark.impute:marginal-weights")
                return [impute_and_aggregate(r) for r in records]
            points = np.array([x for x, _ in records])
            masks = np.array([m for _, m in records])
            weights = marginal_membership_weights(points, masks, state)
            dists: dict[int, MultivariateNormal] = {}
            conditioners: dict[tuple[int, bytes], object] = {}
            out = []
            for j in range(len(records)):
                k = int(Categorical(weights[j]).sample(rng))
                x = points[j]
                row_mask = masks[j]
                if not row_mask.any():
                    completed = x.copy()
                else:
                    dist = dists.get(k)
                    if dist is None:
                        dist = dists[k] = MultivariateNormal(
                            state.means[k], state.covariances[k])
                    if row_mask.all():
                        completed = dist.sample(rng)
                    else:
                        cache_key = (k, row_mask.tobytes())
                        conditional = conditioners.get(cache_key)
                        if conditional is None:
                            conditional = conditioners[cache_key] = (
                                dist.conditioner(np.flatnonzero(~row_mask)))
                        completed = x.copy()
                        completed[row_mask] = conditional.sample_given(
                            rng, x[~row_mask])
                diff = completed - state.means[k]
                out.append((k, completed, row_mask, np.outer(diff, diff)))
            return out

        flops = clusters * (6.0 * d**3 / 8.0 + 3.0 * d * d) + d * d
        old = self.data
        imputed = old.map(
            impute_and_aggregate, flops_per_record=flops,
            ops_per_record=float(2 * clusters + 6),
            closure_bytes=clusters * (d * d + d + 1) * 8.0, label="impute",
            batch_fn=impute_batch,
        ).cache()
        imputed.count()  # materialize the new data set
        old.unpersist()

        c_agg = imputed.map(
            lambda r: (r[0], (1.0, r[1], r[3])), label="triple",
        ).reduce_by_key(gmm.add_triples, flops_per_record=d * d + d, label="agg",
                        batch_combiner=gmm.add_triples_batch)
        c_stats = c_agg.collect_as_map()

        counts = np.zeros(clusters)
        for k in range(clusters):
            count, sum_x, scatter = c_stats.get(
                k, (0.0, np.zeros(d), np.zeros((d, d)))
            )
            counts[k] = count
            state.means[k], state.covariances[k] = gmm.update_cluster(
                rng, prior, state.covariances[k], count, sum_x, scatter,
            )
        state.pi = gmm.sample_pi(rng, prior, counts)
        self.sc.driver_compute(flops=clusters * (6.0 * d**3 + 20.0), label="update-model")

        # The next iteration's input is the freshly imputed data set.
        self.data = imputed.map(lambda r: (r[1], r[2]), label="strip").cache()
        self.data.count()
        imputed.unpersist()

    def completed_points(self) -> np.ndarray:
        """The current completed data set (for validation)."""
        return np.vstack([x for x, _ in self.data.collect()])
