"""Spark GMM implementations (paper Section 5.1, Figures 1(a)-(c)).

``SparkGMM`` follows the paper's PySpark listing: the data RDD is read
from storage and cached; each iteration runs three jobs —

1. ``data.map(sample_mem).reduceByKey(add)`` producing one
   ``(k, (count, sum_x, scatter))`` triple per cluster,
2. a map-only job sampling each cluster's ``(mu_k, Sigma_k)``
   (``updateModel``), and
3. collecting the counts to resample pi at the driver.

``SparkGMMJava`` is the same simulation run with Java callbacks and
Mallet linear algebra (Figure 1(b)); ``SparkGMMSuperVertex`` processes
whole partitions with vectorized NumPy, emitting pre-aggregated triples
(Figure 1(c) — which, as the paper finds, barely helps Spark because the
per-record Python cost is replaced by comparable shuffle machinery).

All sampler math comes from :mod:`repro.kernels.gmm`; this module only
maps the kernels onto RDD operations.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.events import FIXED
from repro.cluster.machine import ClusterSpec
from repro.cluster.tracer import Tracer
from repro.dataflow import SparkContext
from repro.impls.base import Implementation
from repro.kernels import gmm
from repro.stats import Categorical, MultivariateNormal, sample_categorical_rows


class SparkGMM(Implementation):
    """The paper's initial (per-record) Spark GMM."""

    platform = "spark"
    model = "gmm"
    variant = "initial"

    def __init__(self, points: np.ndarray, clusters: int, rng: np.random.Generator,
                 cluster_spec: ClusterSpec, tracer: Tracer | None = None,
                 language: str = "python") -> None:
        self.points = np.asarray(points, dtype=float)
        self.clusters = clusters
        self.rng = rng
        self.sc = SparkContext(cluster_spec, tracer=tracer, language=language)
        self.data = None
        self.prior: gmm.GMMPrior | None = None
        self.state: gmm.GMMState | None = None

    def initialize(self) -> None:
        d = self.points.shape[1]
        # data = lines.map(parseLine).cache()
        self.data = self.sc.text_file(
            list(self.points), bytes_per_record=d * 8.0 + 16.0
        ).cache()
        # Hyperparameters: the observed mean and dimensional variance.
        num = self.data.count()
        total = self.data.reduce(lambda a, b: a + b, flops_per_record=d)
        hyper_mean = total / num
        sq_total = self.data.map(
            lambda x: (x - hyper_mean) ** 2, flops_per_record=2.0 * d, label="sqdiff",
        ).reduce(lambda a, b: a + b, flops_per_record=d)
        variances = sq_total / num
        self.prior = gmm.GMMPrior(
            mu0=hyper_mean, lambda0=np.diag(1.0 / variances), psi=np.diag(variances),
            v=gmm.df_prior(d), alpha=np.full(self.clusters, gmm.DEFAULT_ALPHA),
        )
        # c_model: initial draw per cluster (mvnrnd + invWishart).
        self.state = gmm.initial_state(self.rng, self.prior)
        self.sc.driver_compute(flops=self.clusters * d**3, label="init-model")

    def iterate(self, iteration: int) -> None:
        assert self.state is not None and self.prior is not None
        state, prior, rng = self.state, self.prior, self.rng
        d = prior.dim
        dists = [MultivariateNormal(state.means[k], state.covariances[k])
                 for k in range(self.clusters)]
        self.sc.driver_compute(flops=self.clusters * d**3, label="factor-model")
        log_pi = np.log(state.pi)

        def sample_mem(x):
            weights = gmm.scalar_membership_weights(x, log_pi, dists)
            k = Categorical(weights).sample(rng)
            return (k, gmm.membership_triple(x, state.means[k]))

        def sample_mem_batch(part):
            # Vectorized sample_mem: the batch kernels are row-stable and
            # the batched categorical draw consumes the identical uniform
            # stream, so the records (and the posterior) match the scalar
            # map bitwise.
            xs = np.vstack(part)
            weights = gmm.batch_membership_weights(xs, log_pi, dists)
            ks = sample_categorical_rows(rng, weights)
            scatters = gmm.batch_membership_triples(xs, ks, state.means)
            return [(ks[i], (1.0, part[i], scatters[i])) for i in range(len(part))]

        # Job 1: membership + per-cluster aggregation (dominates runtime).
        # Per record: K density-library calls plus sampling and the
        # outer product — the interpreted operations of the paper's
        # sample_mem — and K d^2-ish numeric work inside them.
        flops_mem = self.clusters * (3.0 * d * d + 4.0 * d) + d * d
        c_agg = self.data.map(
            sample_mem, batch_fn=sample_mem_batch, flops_per_record=flops_mem,
            ops_per_record=float(self.clusters * 0.5 + 2),
            closure_bytes=self.clusters * (d * d + d + 1) * 8.0, label="sample_mem",
        ).reduce_by_key(gmm.add_triples, batch_combiner=gmm.add_triples_batch,
                        flops_per_record=d * d + d, label="agg")

        # Job 2: map-only model update per cluster (the update needs the
        # cluster id, so it maps over the (k, stats) pair).
        c_model = c_agg.map(
            lambda kv: (kv[0], gmm.update_cluster(
                rng, prior, state.covariances[kv[0]], kv[1][0], kv[1][1], kv[1][2],
            )),
            flops_per_record=6.0 * d**3, label="updateModel",
        ).collect_as_map()

        # Job 3: counts -> pi.
        c_num = c_agg.map_values(lambda stats: stats[0], label="counts").collect_as_map()
        counts = np.zeros(self.clusters)
        for k in range(self.clusters):
            counts[k] = c_num.get(k, 0.0)
            if k in c_model:
                state.means[k], state.covariances[k] = c_model[k]
            else:
                # Empty cluster: redraw from the prior-only conditional.
                state.means[k], state.covariances[k] = gmm.update_cluster(
                    rng, prior, state.covariances[k], 0.0,
                    np.zeros(d), np.zeros((d, d)),
                )
        state.pi = gmm.sample_pi(rng, prior, counts)
        self.sc.driver_compute(flops=self.clusters * 20.0, label="sample-pi")


class SparkGMMJava(SparkGMM):
    """The Spark-Java GMM of Figure 1(b): same simulation, Java callback
    costs, Mallet linear algebra."""

    variant = "java"

    def __init__(self, points, clusters, rng, cluster_spec, tracer=None) -> None:
        super().__init__(points, clusters, rng, cluster_spec, tracer, language="java")


class SparkGMMSuperVertex(SparkGMM):
    """Figure 1(c): partitions processed as blocks with vectorized math."""

    variant = "super-vertex"

    def iterate(self, iteration: int) -> None:
        assert self.state is not None and self.prior is not None
        state, prior, rng = self.state, self.prior, self.rng
        d = prior.dim
        self.sc.driver_compute(flops=self.clusters * d**3, label="factor-model")

        def process_block(block):
            if not block:
                return []
            xs = np.vstack(block)
            labels = sample_categorical_rows(rng, gmm.membership_weights(xs, state))
            stats = gmm.sufficient_statistics(xs, labels, state)
            return [
                (k, (stats.counts[k], stats.sums[k], stats.scatters[k]))
                for k in range(self.clusters) if stats.counts[k] > 0
            ]

        # The paper's Spark super-vertex GMM barely beat the per-record
        # code (29:12 vs 26:04): grouping in Python does not remove the
        # per-point interpreted work, so the block callback is charged
        # per-point ops like the plain map.
        n_per_part = max(1, len(self.points) // self.data.num_partitions)
        block_flops = n_per_part * (self.clusters * (3.0 * d * d + 4.0 * d) + d * d)
        c_agg = self.data.map_partitions(
            process_block, flops_per_partition=block_flops,
            ops_per_partition=float(n_per_part * (self.clusters * 0.5 + 2)),
            closure_bytes=self.clusters * (d * d + d + 1) * 8.0, label="block_mem",
        ).reduce_by_key(gmm.add_triples, batch_combiner=gmm.add_triples_batch,
                        flops_per_record=d * d + d,
                        work_scale=FIXED, label="agg")

        c_stats = c_agg.collect_as_map()
        counts = np.zeros(self.clusters)
        for k in range(self.clusters):
            count, sum_x, scatter = c_stats.get(k, (0.0, np.zeros(d), np.zeros((d, d))))
            counts[k] = count
            state.means[k], state.covariances[k] = gmm.update_cluster(
                rng, prior, state.covariances[k], count, sum_x, scatter,
            )
        state.pi = gmm.sample_pi(rng, prior, counts)
        self.sc.driver_compute(flops=self.clusters * (6.0 * d**3 + 20.0), label="update-model")
