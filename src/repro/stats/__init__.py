"""Probability substrate: the distributions the five benchmark models use.

The paper's implementations call PyGSL (Spark/Python), Mallet
(Giraph/Spark-Java) or GSL via C++ (SimSQL VG functions, GraphLab); this
package is the single numerics library all our platform engines share.
"""

from repro.stats.dirichlet import Categorical, Dirichlet, Multinomial, sample_categorical_rows
from repro.stats.distributions import Beta, Gamma, InverseGamma
from repro.stats.invgaussian import InverseGaussian
from repro.stats.mvn import MultivariateNormal
from repro.stats.rng import DEFAULT_SEED, derive_seed, make_rng, spawn, spawn_child
from repro.stats.wishart import InverseWishart, Wishart

__all__ = [
    "Beta",
    "Categorical",
    "DEFAULT_SEED",
    "Dirichlet",
    "Gamma",
    "InverseGamma",
    "InverseGaussian",
    "InverseWishart",
    "Multinomial",
    "MultivariateNormal",
    "Wishart",
    "derive_seed",
    "make_rng",
    "sample_categorical_rows",
    "spawn",
    "spawn_child",
]
