"""Scalar distributions used by the benchmark samplers.

These are the conjugate building blocks of the paper's five models that
are not covered by the dedicated modules (:mod:`repro.stats.mvn`,
:mod:`repro.stats.wishart`, :mod:`repro.stats.invgaussian`,
:mod:`repro.stats.dirichlet`).  Each class exposes ``sample``, ``logpdf``
and ``mean`` with an explicit generator argument.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import special


@dataclass(frozen=True)
class Gamma:
    """Gamma distribution with shape ``alpha`` and rate ``beta``."""

    alpha: float
    beta: float

    def __post_init__(self) -> None:
        if self.alpha <= 0 or self.beta <= 0:
            raise ValueError(f"Gamma requires alpha, beta > 0, got {self.alpha}, {self.beta}")

    def sample(self, rng: np.random.Generator, size: int | None = None):
        return rng.gamma(self.alpha, 1.0 / self.beta, size=size)

    def logpdf(self, x: float) -> float:
        if x <= 0:
            return -np.inf
        a, b = self.alpha, self.beta
        return a * np.log(b) - special.gammaln(a) + (a - 1) * np.log(x) - b * x

    @property
    def mean(self) -> float:
        return self.alpha / self.beta

    @property
    def variance(self) -> float:
        return self.alpha / self.beta**2


@dataclass(frozen=True)
class InverseGamma:
    """Inverse-gamma distribution; the conjugate prior for a normal variance.

    Used for the Bayesian Lasso's ``sigma^2`` update (Section 6 of the
    paper).  Parameterized by shape ``alpha`` and scale ``beta`` so that
    ``X ~ InvGamma(alpha, beta)`` iff ``1/X ~ Gamma(alpha, rate=beta)``.
    """

    alpha: float
    beta: float

    def __post_init__(self) -> None:
        if self.alpha <= 0 or self.beta <= 0:
            raise ValueError(f"InverseGamma requires alpha, beta > 0, got {self.alpha}, {self.beta}")

    def sample(self, rng: np.random.Generator, size: int | None = None):
        return 1.0 / rng.gamma(self.alpha, 1.0 / self.beta, size=size)

    def logpdf(self, x: float) -> float:
        if x <= 0:
            return -np.inf
        a, b = self.alpha, self.beta
        return a * np.log(b) - special.gammaln(a) - (a + 1) * np.log(x) - b / x

    @property
    def mean(self) -> float:
        """Mean (defined for ``alpha > 1``)."""
        if self.alpha <= 1:
            raise ValueError("mean undefined for alpha <= 1")
        return self.beta / (self.alpha - 1)

    @property
    def variance(self) -> float:
        """Variance (defined for ``alpha > 2``)."""
        if self.alpha <= 2:
            raise ValueError("variance undefined for alpha <= 2")
        return self.beta**2 / ((self.alpha - 1) ** 2 * (self.alpha - 2))


@dataclass(frozen=True)
class Beta:
    """Beta distribution; the paper uses ``Beta(1, 1)`` censoring coins."""

    a: float
    b: float

    def __post_init__(self) -> None:
        if self.a <= 0 or self.b <= 0:
            raise ValueError(f"Beta requires a, b > 0, got {self.a}, {self.b}")

    def sample(self, rng: np.random.Generator, size: int | None = None):
        return rng.beta(self.a, self.b, size=size)

    def logpdf(self, x: float) -> float:
        if not 0 < x < 1:
            return -np.inf
        return (
            (self.a - 1) * np.log(x)
            + (self.b - 1) * np.log1p(-x)
            - special.betaln(self.a, self.b)
        )

    @property
    def mean(self) -> float:
        return self.a / (self.a + self.b)

    @property
    def variance(self) -> float:
        s = self.a + self.b
        return self.a * self.b / (s**2 * (s + 1))
