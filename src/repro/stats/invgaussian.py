"""Inverse Gaussian (Wald) distribution.

The Bayesian Lasso (paper Section 6) resamples the auxiliary variables

    1/tau_j^2 ~ InvGaussian( sqrt(lambda^2 sigma^2 / beta_j^2), lambda^2 )

Sampling uses the Michael-Schucany-Haas (1976) transformation method,
the same algorithm PyGSL/GSL uses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class InverseGaussian:
    """Inverse Gaussian with mean ``mu`` and shape ``lam``."""

    mu: float
    lam: float

    def __post_init__(self) -> None:
        if self.mu <= 0 or self.lam <= 0:
            raise ValueError(f"InverseGaussian requires mu, lam > 0, got {self.mu}, {self.lam}")

    def sample(self, rng: np.random.Generator, size: int | None = None):
        """Michael-Schucany-Haas transformation sampler."""
        scalar = size is None
        n = 1 if scalar else size
        mu, lam = self.mu, self.lam
        nu = rng.standard_normal(n)
        y = nu**2
        x = mu + (mu**2 * y) / (2 * lam) - (mu / (2 * lam)) * np.sqrt(4 * mu * lam * y + mu**2 * y**2)
        u = rng.uniform(size=n)
        accept_first = u <= mu / (mu + x)
        out = np.where(accept_first, x, mu**2 / x)
        return float(out[0]) if scalar else out

    def logpdf(self, x: float) -> float:
        if x <= 0:
            return -np.inf
        mu, lam = self.mu, self.lam
        return (
            0.5 * np.log(lam / (2 * np.pi * x**3))
            - lam * (x - mu) ** 2 / (2 * mu**2 * x)
        )

    @property
    def mean(self) -> float:
        return self.mu

    @property
    def variance(self) -> float:
        return self.mu**3 / self.lam
