"""Dirichlet, Categorical and Multinomial distributions.

These drive every discrete update in the paper's five models: GMM mixing
proportions and memberships, HMM transition/emission rows and state
assignments, and LDA topic proportions and topic assignments.
"""

from __future__ import annotations

import numpy as np
from scipy import special


class Dirichlet:
    """Dirichlet distribution over the simplex, concentration ``alpha``."""

    def __init__(self, alpha: np.ndarray) -> None:
        alpha = np.asarray(alpha, dtype=float)
        if alpha.ndim != 1 or alpha.size < 2:
            raise ValueError(f"alpha must be a vector of length >= 2, got shape {alpha.shape}")
        if np.any(alpha <= 0):
            raise ValueError("alpha entries must be positive")
        self.alpha = alpha

    @property
    def dim(self) -> int:
        return self.alpha.size

    def sample(self, rng: np.random.Generator, size: int | None = None) -> np.ndarray:
        return rng.dirichlet(self.alpha, size=size)

    def logpdf(self, x: np.ndarray) -> float:
        x = np.asarray(x, dtype=float)
        if np.any(x < 0) or not np.isclose(x.sum(), 1.0):
            return -np.inf
        with np.errstate(divide="ignore"):
            terms = np.where(self.alpha == 1.0, 0.0, (self.alpha - 1) * np.log(x))
        if np.any(np.isneginf(terms)):
            return -np.inf
        norm = special.gammaln(self.alpha.sum()) - special.gammaln(self.alpha).sum()
        return float(norm + terms.sum())

    @property
    def mean(self) -> np.ndarray:
        return self.alpha / self.alpha.sum()


class Categorical:
    """Categorical distribution over ``{0, ..., K-1}``.

    Accepts unnormalized weights, matching the paper's usage where the
    membership probabilities are built as products of densities and only
    normalized at sampling time.
    """

    def __init__(self, weights: np.ndarray) -> None:
        weights = np.asarray(weights, dtype=float)
        if weights.ndim != 1 or weights.size == 0:
            raise ValueError(f"weights must be a non-empty vector, got shape {weights.shape}")
        if np.any(weights < 0) or not np.all(np.isfinite(weights)):
            raise ValueError("weights must be finite and non-negative")
        total = weights.sum()
        if total <= 0:
            raise ValueError("at least one weight must be positive")
        self.probs = weights / total

    @property
    def dim(self) -> int:
        return self.probs.size

    def sample(self, rng: np.random.Generator, size: int | None = None):
        if size is None:
            return int(rng.choice(self.dim, p=self.probs))
        return rng.choice(self.dim, size=size, p=self.probs)

    def logpmf(self, k: int) -> float:
        if not 0 <= k < self.dim:
            return -np.inf
        p = self.probs[k]
        return float(np.log(p)) if p > 0 else -np.inf


def sample_categorical_rows(rng: np.random.Generator, weights: np.ndarray) -> np.ndarray:
    """Vectorized draw of one category per row of an (n, K) weight matrix.

    This is the hot path of every membership update; the inverse-CDF
    trick with one uniform per row keeps it a single numpy pass.
    """
    weights = np.asarray(weights, dtype=float)
    if weights.ndim != 2:
        raise ValueError(f"weights must be 2-D, got shape {weights.shape}")
    totals = weights.sum(axis=1, keepdims=True)
    if np.any(totals <= 0) or not np.all(np.isfinite(totals)):
        raise ValueError("each row must have positive, finite total weight")
    cdf = np.cumsum(weights, axis=1)
    u = rng.uniform(size=(weights.shape[0], 1)) * totals
    return (u > cdf).sum(axis=1)


class Multinomial:
    """Multinomial distribution with ``n`` trials and probabilities ``probs``."""

    def __init__(self, n: int, probs: np.ndarray) -> None:
        probs = np.asarray(probs, dtype=float)
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        if np.any(probs < 0) or not np.isclose(probs.sum(), 1.0):
            raise ValueError("probs must be non-negative and sum to 1")
        self.n = int(n)
        self.probs = probs

    def sample(self, rng: np.random.Generator, size: int | None = None) -> np.ndarray:
        return rng.multinomial(self.n, self.probs, size=size)

    def logpmf(self, counts: np.ndarray) -> float:
        counts = np.asarray(counts, dtype=int)
        if counts.sum() != self.n or np.any(counts < 0):
            return -np.inf
        with np.errstate(divide="ignore", invalid="ignore"):
            terms = np.where(counts == 0, 0.0, counts * np.log(self.probs))
        if np.any(np.isnan(terms)) or np.any(np.isneginf(terms)):
            return -np.inf
        return float(
            special.gammaln(self.n + 1) - special.gammaln(counts + 1).sum() + terms.sum()
        )
