"""Wishart and inverse-Wishart distributions.

The GMM sampler (paper Section 5) places an ``InvWishart(v, Psi)`` prior
on each cluster covariance and resamples

    Sigma_k ~ InvWish(n + v, Psi + sum_j c_jk (x_j - mu_k)(x_j - mu_k)^T)

Sampling uses the Bartlett decomposition of the Wishart: with
``Psi = L L^T``, draw a lower-triangular ``A`` with chi-distributed
diagonal and standard-normal subdiagonal, then ``W = L A A^T L^T`` is
``Wishart(df, Psi)`` and the inverse-Wishart draw is ``(L A)^-T (L A)^-1``
scaled appropriately.
"""

from __future__ import annotations

import numpy as np
from scipy import special
from scipy.linalg import solve_triangular


class Wishart:
    """Wishart distribution with ``df`` degrees of freedom, scale ``scale``."""

    def __init__(self, df: float, scale: np.ndarray) -> None:
        scale = np.asarray(scale, dtype=float)
        if scale.ndim != 2 or scale.shape[0] != scale.shape[1]:
            raise ValueError(f"scale must be square, got shape {scale.shape}")
        if df <= scale.shape[0] - 1:
            raise ValueError(f"df must exceed dim-1 ({scale.shape[0] - 1}), got {df}")
        self.df = float(df)
        self.scale = scale
        self._chol = np.linalg.cholesky(scale)

    @property
    def dim(self) -> int:
        return self.scale.shape[0]

    def _bartlett_factor(self, rng: np.random.Generator) -> np.ndarray:
        """Lower-triangular Bartlett factor ``A`` with A A^T ~ W(df, I)."""
        d = self.dim
        a = np.zeros((d, d))
        rows, cols = np.tril_indices(d, k=-1)
        a[rows, cols] = rng.standard_normal(rows.size)
        # chi(df - i) diagonal entries, i = 0..d-1.
        a[np.diag_indices(d)] = np.sqrt(rng.chisquare(self.df - np.arange(d)))
        return a

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        factor = self._chol @ self._bartlett_factor(rng)
        return factor @ factor.T

    def logpdf(self, x: np.ndarray) -> float:
        x = np.asarray(x, dtype=float)
        d, df = self.dim, self.df
        eigvals = np.linalg.eigvalsh(0.5 * (x + x.T))
        if eigvals.min() <= 0:
            return -np.inf
        logdet_x = float(np.sum(np.log(eigvals)))
        logdet_scale = 2.0 * np.sum(np.log(np.diag(self._chol)))
        trace_term = np.trace(np.linalg.solve(self.scale, x))
        return (
            0.5 * (df - d - 1) * logdet_x
            - 0.5 * trace_term
            - 0.5 * df * d * np.log(2)
            - 0.5 * df * logdet_scale
            - special.multigammaln(0.5 * df, d)
        )

    @property
    def mean(self) -> np.ndarray:
        return self.df * self.scale


class InverseWishart:
    """Inverse-Wishart distribution with ``df`` degrees of freedom, scale ``scale``.

    ``X ~ InvWishart(df, Psi)`` iff ``X^-1 ~ Wishart(df, Psi^-1)``.
    """

    def __init__(self, df: float, scale: np.ndarray) -> None:
        scale = np.asarray(scale, dtype=float)
        if scale.ndim != 2 or scale.shape[0] != scale.shape[1]:
            raise ValueError(f"scale must be square, got shape {scale.shape}")
        if df <= scale.shape[0] - 1:
            raise ValueError(f"df must exceed dim-1 ({scale.shape[0] - 1}), got {df}")
        self.df = float(df)
        self.scale = scale
        self._chol = np.linalg.cholesky(scale)
        self._wishart_identity = Wishart(df, np.eye(scale.shape[0]))

    @property
    def dim(self) -> int:
        return self.scale.shape[0]

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        """Draw via Bartlett: X = L A^-T A^-1 L^T with Psi = L L^T."""
        a = self._wishart_identity._bartlett_factor(rng)
        # Solve A Z = L^T -> Z = A^-1 L^T; then X = Z^T Z.
        z = solve_triangular(a, self._chol.T, lower=True)
        return z.T @ z

    def logpdf(self, x: np.ndarray) -> float:
        x = np.asarray(x, dtype=float)
        d, df = self.dim, self.df
        eigvals = np.linalg.eigvalsh(0.5 * (x + x.T))
        if eigvals.min() <= 0:
            return -np.inf
        logdet_x = float(np.sum(np.log(eigvals)))
        logdet_scale = 2.0 * np.sum(np.log(np.diag(self._chol)))
        trace_term = np.trace(np.linalg.solve(x, self.scale))
        return (
            0.5 * df * logdet_scale
            - 0.5 * (df + d + 1) * logdet_x
            - 0.5 * trace_term
            - 0.5 * df * d * np.log(2)
            - special.multigammaln(0.5 * df, d)
        )

    @property
    def mean(self) -> np.ndarray:
        """Mean (defined for ``df > dim + 1``)."""
        if self.df <= self.dim + 1:
            raise ValueError("mean undefined for df <= dim + 1")
        return self.scale / (self.df - self.dim - 1)
