"""Seeded random-generator management.

Every sampler in the package takes an explicit :class:`numpy.random.Generator`
so that platform implementations can be replayed against the reference
samplers with an identical random stream.  :func:`spawn` derives
statistically independent child streams, which is how the simulated
"machines" of a cluster each get their own generator.
"""

from __future__ import annotations

import numpy as np

DEFAULT_SEED = 20140622  # SIGMOD'14 started June 22, 2014.


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Create a generator from ``seed`` (package default when ``None``)."""
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


def spawn(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``rng``."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return [np.random.Generator(np.random.PCG64(s)) for s in rng.bit_generator.seed_seq.spawn(count)]
