"""Seeded random-generator management: the package's one seeding chokepoint.

Every sampler in the package takes an explicit :class:`numpy.random.Generator`
so that platform implementations can be replayed against the reference
samplers with an identical random stream.  All generator *construction*
happens here: :func:`make_rng` turns seed material into a generator,
:func:`spawn` derives positional child streams (how the simulated
"machines" of a cluster each get their own generator), and
:func:`spawn_child` / :func:`derive_seed` derive *named* streams keyed by
:func:`repro.hashing.stable_hash`, so a child stream is a pure function
of ``(parent, tag)`` rather than of how many children were spawned
before it.

The static-analysis rule D002 (``repro.analysis``) enforces that no
other module calls ``numpy.random.default_rng`` or the module-level
``numpy.random``/``random`` samplers directly.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.hashing import stable_hash

DEFAULT_SEED = 20140622  # SIGMOD'14 started June 22, 2014.


def make_rng(seed: int | Sequence[int] | None = None) -> np.random.Generator:
    """Create a generator from ``seed`` (package default when ``None``).

    ``seed`` may also be a sequence of ints — ``numpy`` folds the whole
    tuple into the seed sequence, which is how hierarchical seeds like
    ``(schedule_seed, phase_index)`` stay deterministic without ad-hoc
    integer arithmetic.
    """
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


def derive_seed(seed: int, tag) -> int:
    """A child seed derived deterministically from ``(seed, tag)``.

    Uses :func:`repro.hashing.stable_hash`, so the derivation is the
    same in every process regardless of ``PYTHONHASHSEED``.  ``tag`` can
    be any stable-hashable value (ints, strs, tuples); use it to name
    the child stream (a figure column, a machine id) instead of ad-hoc
    ``seed + k`` arithmetic, which collides as soon as two call sites
    pick overlapping offsets.
    """
    return stable_hash((int(seed), tag))


def spawn(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``rng``."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return [np.random.Generator(np.random.PCG64(s)) for s in rng.bit_generator.seed_seq.spawn(count)]


def spawn_child(rng: np.random.Generator, tag) -> np.random.Generator:
    """Derive the child generator named ``tag`` from ``rng``.

    Unlike :func:`spawn`, the child is a pure function of the parent's
    seed material and ``tag`` — it does not advance or depend on the
    parent's state, and spawning children in a different order (or
    skipping some) yields the same streams.  ``tag`` is folded in via
    :func:`repro.hashing.stable_hash`, so any stable-hashable value
    works as a name.
    """
    parent = rng.bit_generator.seed_seq
    if not isinstance(parent, np.random.SeedSequence):
        raise TypeError(
            f"cannot derive a named child from a generator without a "
            f"SeedSequence (got {type(parent).__name__}); build the parent "
            f"with make_rng()")
    child = np.random.SeedSequence(
        entropy=parent.entropy,
        spawn_key=(*parent.spawn_key, stable_hash(tag)),
    )
    return np.random.Generator(np.random.PCG64(child))
