"""Multivariate normal distribution with conditional partitioning.

The GMM sampler needs draws and log-densities; the Gaussian-imputation
model (paper Section 9) additionally needs the conditional distribution
of the censored coordinates given the observed ones:

    x1 | x2  ~  Normal( mu1 + S12 S22^-1 (x2 - mu2),
                        S11 - S12 S22^-1 S21 )

which :meth:`MultivariateNormal.condition` computes.
"""

from __future__ import annotations

import numpy as np


class MultivariateNormal:
    """A d-dimensional normal with mean ``mu`` and covariance ``cov``.

    The covariance is Cholesky-factored once at construction, so repeated
    sampling and density evaluation are cheap.  A small diagonal jitter is
    retried automatically when the covariance is numerically singular.
    """

    def __init__(self, mean: np.ndarray, cov: np.ndarray) -> None:
        mean = np.asarray(mean, dtype=float)
        cov = np.asarray(cov, dtype=float)
        if mean.ndim != 1:
            raise ValueError(f"mean must be a vector, got shape {mean.shape}")
        if cov.shape != (mean.size, mean.size):
            raise ValueError(f"cov shape {cov.shape} incompatible with mean of size {mean.size}")
        self.mean = mean
        self.cov = cov
        self._chol = _stable_cholesky(cov)

    @property
    def dim(self) -> int:
        return self.mean.size

    def sample(self, rng: np.random.Generator, size: int | None = None) -> np.ndarray:
        """Draw one vector (or ``size`` rows) via the Cholesky factor."""
        if size is None:
            z = rng.standard_normal(self.dim)
            return self.mean + self._chol @ z
        z = rng.standard_normal((size, self.dim))
        return self.mean + z @ self._chol.T

    def logpdf(self, x: np.ndarray) -> float | np.ndarray:
        """Log density at ``x`` (a vector, or a matrix of row vectors)."""
        x = np.asarray(x, dtype=float)
        dev = x - self.mean
        # Solve L z = dev for z; the quadratic form is ||z||^2.
        z = _tri_solve(self._chol, dev)
        quad = np.sum(z**2, axis=-1)
        logdet = 2.0 * np.sum(np.log(np.diag(self._chol)))
        return -0.5 * (self.dim * np.log(2 * np.pi) + logdet + quad)

    def condition(self, observed_idx: np.ndarray, observed_values: np.ndarray) -> "MultivariateNormal":
        """Distribution of the unobserved coordinates given observed ones.

        ``observed_idx`` selects the observed coordinates; the returned
        normal is over the remaining coordinates in their original order.
        With no observed coordinates this is the marginal (``self``
        reordered is unnecessary); with all observed it is degenerate and
        raises.
        """
        observed_idx = np.asarray(observed_idx, dtype=int)
        observed_values = np.asarray(observed_values, dtype=float)
        if observed_idx.size != observed_values.size:
            raise ValueError("observed_idx and observed_values must have equal length")
        mask = np.zeros(self.dim, dtype=bool)
        mask[observed_idx] = True
        hidden_idx = np.flatnonzero(~mask)
        if hidden_idx.size == 0:
            raise ValueError("cannot condition on every coordinate")
        if observed_idx.size == 0:
            return MultivariateNormal(self.mean, self.cov)
        mu1 = self.mean[hidden_idx]
        mu2 = self.mean[observed_idx]
        s11 = self.cov[np.ix_(hidden_idx, hidden_idx)]
        s12 = self.cov[np.ix_(hidden_idx, observed_idx)]
        s22 = self.cov[np.ix_(observed_idx, observed_idx)]
        gain = np.linalg.solve(s22, s12.T).T  # S12 S22^-1
        cond_mean = mu1 + gain @ (observed_values - mu2)
        cond_cov = s11 - gain @ s12.T
        # Symmetrize against round-off before the Cholesky.
        cond_cov = 0.5 * (cond_cov + cond_cov.T)
        return MultivariateNormal(cond_mean, cond_cov)

    def conditioner(self, observed_idx: np.ndarray) -> "ConditionalSampler":
        """Precomputed conditioning onto a fixed observed-index set.

        Everything that does not depend on the observed *values* — the
        gain matrix, the conditional covariance, and its Cholesky factor
        — is computed once, so repeated conditioning on the same index
        pattern (the imputation batch kernel) skips the per-point solve
        and factorization.  ``sample_given`` is bitwise-identical to
        ``self.condition(observed_idx, values).sample(rng)``.
        """
        return ConditionalSampler(self, observed_idx)


class ConditionalSampler:
    """The point-independent half of :meth:`MultivariateNormal.condition`."""

    def __init__(self, parent: MultivariateNormal, observed_idx: np.ndarray) -> None:
        observed_idx = np.asarray(observed_idx, dtype=int)
        mask = np.zeros(parent.dim, dtype=bool)
        mask[observed_idx] = True
        hidden_idx = np.flatnonzero(~mask)
        if hidden_idx.size == 0:
            raise ValueError("cannot condition on every coordinate")
        if observed_idx.size == 0:
            raise ValueError("nothing observed: sample the parent directly")
        self._mu1 = parent.mean[hidden_idx]
        self._mu2 = parent.mean[observed_idx]
        s11 = parent.cov[np.ix_(hidden_idx, hidden_idx)]
        s12 = parent.cov[np.ix_(hidden_idx, observed_idx)]
        s22 = parent.cov[np.ix_(observed_idx, observed_idx)]
        self._gain = np.linalg.solve(s22, s12.T).T  # S12 S22^-1
        cond_cov = s11 - self._gain @ s12.T
        cond_cov = 0.5 * (cond_cov + cond_cov.T)
        self._chol = _stable_cholesky(cond_cov)
        self._dim = hidden_idx.size

    def sample_given(self, rng: np.random.Generator,
                     observed_values: np.ndarray) -> np.ndarray:
        """One draw of the hidden coordinates given observed values."""
        observed_values = np.asarray(observed_values, dtype=float)
        mean = self._mu1 + self._gain @ (observed_values - self._mu2)
        z = rng.standard_normal(self._dim)
        return mean + self._chol @ z


def _stable_cholesky(cov: np.ndarray, max_tries: int = 5) -> np.ndarray:
    """Cholesky factor with escalating diagonal jitter on failure."""
    jitter = 0.0
    scale = float(np.mean(np.diag(cov))) or 1.0
    for attempt in range(max_tries):
        try:
            return np.linalg.cholesky(cov + jitter * np.eye(cov.shape[0]))
        except np.linalg.LinAlgError:
            jitter = scale * 10.0 ** (attempt - 10)
    raise np.linalg.LinAlgError(f"covariance not positive definite even with jitter {jitter:g}")


#: Dimension bound below which the row-stable substitution is used.
#: LAPACK's blocked triangular solve is not bitwise row-decomposable
#: (solving a batch gives different low-order bits than solving each row
#: alone), which would make vectorized batch kernels diverge from the
#: per-record path.  Up to this dimension we run an explicit forward
#: substitution that is vectorized across rows but sequential over
#: dimensions, so a one-row solve and any batch solve agree bitwise.
ROW_STABLE_MAX_DIM = 32


def _tri_solve(chol: np.ndarray, dev: np.ndarray) -> np.ndarray:
    """Solve ``L z = dev`` for lower-triangular ``L`` (vector or rows).

    Bitwise row-decomposable for ``d <= ROW_STABLE_MAX_DIM``: the result
    for a batch of rows equals the per-row results exactly.
    """
    vector = dev.ndim == 1
    d = chol.shape[0]
    if d > ROW_STABLE_MAX_DIM:
        from scipy.linalg import solve_triangular

        if vector:
            return solve_triangular(chol, dev, lower=True)
        return solve_triangular(chol, dev.T, lower=True).T
    rows = dev[None, :] if vector else dev
    b = rows.T  # (d, n): one column per row of dev
    z = np.empty_like(b)
    for j in range(d):
        acc = b[j]
        for i in range(j):
            acc = acc - chol[j, i] * z[i]
        z[j] = acc / chol[j, j]
    out = z.T
    return out[0] if vector else out
