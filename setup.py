"""Legacy setuptools shim so ``pip install -e .`` works offline (no wheel)."""

from setuptools import setup

setup()
